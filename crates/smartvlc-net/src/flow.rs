//! Per-flow transmit queues with deficit-round-robin service.
//!
//! One bulk flow must not starve IoT keepalives: each flow owns a FIFO
//! of pending datagrams, and fragments are cut lazily from the head
//! datagram of whichever flow the DRR rotation currently credits. Lazy
//! cutting matters under graceful degradation — the MAC's payload
//! budget halves per AMPPM tier, and a fragment sized for the old MTU
//! would no longer fit; cutting at emission time always matches the
//! budget of the frame that will actually carry the bytes.
//!
//! Everything is deterministic: flows are visited in a `VecDeque`
//! rotation, quanta and deficits are plain integers, and no iteration
//! order depends on a hash map.

use crate::error::NetError;
use crate::frag::{FragHeader, MAX_FLOWS, MAX_FRAG_INDEX};
use smartvlc_obs as obs;
use std::collections::VecDeque;

/// A fragment ready to become one MAC frame body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TxFragment {
    /// Flow the fragment belongs to.
    pub flow: u8,
    /// Per-flow datagram sequence number.
    pub seq: u8,
    /// Encapsulated bytes (fragment header + chunk).
    pub payload: Vec<u8>,
    /// Whether this fragment finishes its datagram.
    pub dgram_done: bool,
}

#[derive(Clone, Debug)]
struct PendingDgram {
    seq: u8,
    data: Vec<u8>,
    /// Bytes already emitted.
    offset: usize,
    /// Next fragment index.
    next_index: u16,
}

#[derive(Clone, Debug, Default)]
struct FlowState {
    queue: VecDeque<PendingDgram>,
    next_seq: u8,
    deficit: usize,
    /// Whether the flow has received its quantum for the current visit.
    credited: bool,
    /// Whether the flow sits in the active rotation.
    in_active: bool,
}

/// The deficit-round-robin fragment scheduler.
#[derive(Clone, Debug)]
pub struct DrrScheduler {
    /// Deficit credit per rotation visit, bytes.
    quantum: usize,
    /// Most datagrams queued per flow before `enqueue` refuses.
    max_queued: usize,
    flows: Vec<FlowState>,
    active: VecDeque<u8>,
}

impl DrrScheduler {
    /// Create a scheduler. `quantum` is the byte credit each flow earns
    /// per rotation visit; `max_queued` bounds each flow's FIFO.
    pub fn new(quantum: usize, max_queued: usize) -> DrrScheduler {
        DrrScheduler {
            quantum: quantum.max(1),
            max_queued: max_queued.max(1),
            flows: (0..MAX_FLOWS).map(|_| FlowState::default()).collect(),
            active: VecDeque::new(),
        }
    }

    /// Queue a datagram on `flow`. Returns the per-flow sequence number
    /// it will travel under.
    pub fn enqueue(&mut self, flow: u8, data: Vec<u8>) -> Result<u8, NetError> {
        if flow >= MAX_FLOWS {
            return Err(NetError::FlowOutOfRange { flow });
        }
        // The 15-bit fragment index must cover the worst case: the
        // degraded MAC budget can shrink to 16 B frames (12 B chunks).
        let max = u16::MAX as usize;
        if data.len() > max {
            return Err(NetError::DatagramTooLarge {
                len: data.len(),
                max,
            });
        }
        let st = &mut self.flows[flow as usize];
        if st.queue.len() >= self.max_queued {
            obs::counter_add(obs::key!("net.tx.queue_drops"), 1);
            return Err(NetError::QueueFull { flow });
        }
        let seq = st.next_seq;
        st.next_seq = st.next_seq.wrapping_add(1);
        st.queue.push_back(PendingDgram {
            seq,
            data,
            offset: 0,
            next_index: 0,
        });
        if !st.in_active {
            st.in_active = true;
            self.active.push_back(flow);
        }
        obs::counter_add(obs::key!("net.tx.datagrams"), 1);
        Ok(seq)
    }

    /// Cut and emit the next fragment under DRR service, sized to fit
    /// `mtu` bytes of MAC frame body (header included). `None` when
    /// every queue is empty.
    pub fn next_fragment(&mut self, mtu: usize) -> Option<TxFragment> {
        let budget = mtu.saturating_sub(FragHeader::WIRE_BYTES).max(1);
        // Each rotation either emits or removes/rotates a flow; with
        // deficits growing by a quantum per visit this terminates in at
        // most O(flows * ceil(budget/quantum)) steps.
        loop {
            let flow = *self.active.front()?;
            let quantum = self.quantum;
            let st = &mut self.flows[flow as usize];
            if st.queue.is_empty() {
                // A flow with nothing queued leaves the rotation and
                // forfeits its deficit (classic DRR: credit does not
                // accumulate across idle periods).
                st.deficit = 0;
                st.credited = false;
                st.in_active = false;
                self.active.pop_front();
                continue;
            }
            if !st.credited {
                st.deficit = st.deficit.saturating_add(quantum);
                st.credited = true;
            }
            let head = st.queue.front_mut().expect("non-empty");
            let remaining = head.data.len() - head.offset;
            let chunk_len = remaining.min(budget);
            // A zero-length datagram still costs one byte of deficit so
            // a flood of empty datagrams cannot monopolize the rotation.
            let cost = chunk_len.max(1);
            if st.deficit < cost {
                // Out of credit: move to the back of the rotation and
                // earn a fresh quantum on the next visit.
                st.credited = false;
                self.active.rotate_left(1);
                continue;
            }
            st.deficit -= cost;
            let last = head.offset + chunk_len == head.data.len();
            let hdr = FragHeader {
                flow,
                seq: head.seq,
                index: head.next_index,
                last,
            };
            let payload = hdr.encapsulate(&head.data[head.offset..head.offset + chunk_len]);
            head.offset += chunk_len;
            head.next_index = head.next_index.min(MAX_FRAG_INDEX - 1) + 1;
            let seq = head.seq;
            if last {
                st.queue.pop_front();
            }
            obs::counter_add(obs::key!("net.tx.frags"), 1);
            return Some(TxFragment {
                flow,
                seq,
                payload,
                dgram_done: last,
            });
        }
    }

    /// Datagrams queued across all flows (the one currently being cut
    /// counts until its last fragment is emitted).
    pub fn queued(&self) -> usize {
        self.flows.iter().map(|f| f.queue.len()).sum()
    }

    /// Unsent bytes across all flows.
    pub fn queued_bytes(&self) -> usize {
        self.flows
            .iter()
            .flat_map(|f| f.queue.iter())
            .map(|d| d.data.len() - d.offset)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_flow_emits_in_order() {
        let mut s = DrrScheduler::new(512, 8);
        s.enqueue(0, vec![1u8; 100]).unwrap();
        s.enqueue(0, vec![2u8; 50]).unwrap();
        let mut seen = Vec::new();
        while let Some(f) = s.next_fragment(64) {
            let (h, chunk) = FragHeader::decapsulate(&f.payload).unwrap();
            seen.push((h.seq, h.index, h.last, chunk.to_vec()));
        }
        // 100 B at 60 B chunks = 2 fragments, then 50 B = 1 fragment.
        assert_eq!(seen.len(), 3);
        assert_eq!((seen[0].0, seen[0].1, seen[0].2), (0, 0, false));
        assert_eq!((seen[1].0, seen[1].1, seen[1].2), (0, 1, true));
        assert_eq!((seen[2].0, seen[2].1, seen[2].2), (1, 0, true));
        assert_eq!(s.queued(), 0);
    }

    #[test]
    fn drr_interleaves_bulk_and_keepalive() {
        // Flow 0 queues one huge datagram; flow 1 queues small ones.
        // With equal quanta flow 1 must get roughly every other slot,
        // not wait for the bulk transfer to finish.
        let mut s = DrrScheduler::new(64, 64);
        s.enqueue(0, vec![0u8; 4000]).unwrap();
        for _ in 0..10 {
            s.enqueue(1, vec![1u8; 40]).unwrap();
        }
        let first: Vec<u8> = (0..20)
            .filter_map(|_| s.next_fragment(64))
            .map(|f| f.flow)
            .collect();
        let keepalives = first.iter().filter(|&&f| f == 1).count();
        assert!(
            keepalives >= 8,
            "keepalives starved: {keepalives}/20 early slots ({first:?})"
        );
    }

    #[test]
    fn fragments_adapt_to_a_shrinking_mtu() {
        let mut s = DrrScheduler::new(512, 8);
        s.enqueue(0, (0..=199u8).cycle().take(200).collect())
            .unwrap();
        let f1 = s.next_fragment(126).unwrap();
        assert_eq!(f1.payload.len(), 126);
        // Tier escalation shrinks the budget mid-datagram; the next cut
        // fits the new frame size instead of overflowing it.
        let f2 = s.next_fragment(14).unwrap();
        assert_eq!(f2.payload.len(), 14);
        let (h2, _) = FragHeader::decapsulate(&f2.payload).unwrap();
        assert_eq!(h2.index, 1);
    }

    #[test]
    fn enqueue_limits_are_typed() {
        let mut s = DrrScheduler::new(512, 2);
        assert_eq!(
            s.enqueue(16, vec![0]),
            Err(NetError::FlowOutOfRange { flow: 16 })
        );
        assert!(s
            .enqueue(0, vec![0u8; 100_000])
            .is_err_and(|e| matches!(e, NetError::DatagramTooLarge { .. })));
        s.enqueue(3, vec![1]).unwrap();
        s.enqueue(3, vec![2]).unwrap();
        assert_eq!(s.enqueue(3, vec![3]), Err(NetError::QueueFull { flow: 3 }));
    }

    #[test]
    fn empty_datagram_emits_one_fragment() {
        let mut s = DrrScheduler::new(512, 8);
        s.enqueue(7, Vec::new()).unwrap();
        let f = s.next_fragment(64).unwrap();
        assert!(f.dgram_done);
        let (h, chunk) = FragHeader::decapsulate(&f.payload).unwrap();
        assert_eq!((h.flow, h.index, h.last), (7, 0, true));
        assert!(chunk.is_empty());
        assert!(s.next_fragment(64).is_none());
    }
}
