//! # smartvlc-sim — experiment scenarios for the SmartVLC reproduction
//!
//! Each module maps to part of the paper's §6 evaluation:
//!
//! * [`static_run`] — the static scenario (§6.2): scheme comparison
//!   across 17 dimming levels (Fig. 15), throughput vs distance
//!   (Fig. 16), throughput vs incidence angle (Fig. 17).
//! * [`dynamic_run`] — the dynamic scenario (§6.3): the 67-second blind
//!   pull driving Fig. 19(a) throughput, Fig. 19(b) intensity traces and
//!   Fig. 19(c) adaptation counts.
//! * [`perception`] — the 20-subject user study, virtualized (§6.1's
//!   `fth` selection and §6.3's Table 2) with calibrated psychometric
//!   models.
//! * [`report`] — CSV/markdown table writers and a terminal plot helper
//!   so every figure generator can both print and persist its data.
//! * [`runner`] — the deterministic parallel work pool every sweep fans
//!   out on: `(point × seed)` tasks with keyed RNG streams, bit-identical
//!   results at any `SMARTVLC_THREADS`.
//! * [`scenario`] — the shared scenario-builder API: every battery's
//!   scenario list is assembled through a validated builder returning a
//!   typed [`ScenarioError`] on bad configuration.
//!
//! Beyond the paper's own evaluation:
//!
//! * [`broadcast`] — one luminaire, many receivers (§3's plural).
//! * [`energy`] — the intro's energy-saving motivation, integrated from
//!   the LED trace.
//! * [`daylong`] — planning-level whole-day runs over a diurnal ambient
//!   profile (control plane identical to the live link; per-slot noise
//!   replaced by the analytic rate).
//! * [`chaos`] — scheduled channel faults (spikes, occlusion, drift,
//!   slips, saturation, flaky uplink) against the self-healing link,
//!   with same-seed fault-free controls.
//! * [`cell`] — a ceiling grid of luminaires serving mobile users:
//!   per-cell adaptation against a shared ambient, waypoint mobility,
//!   RSS handover with hysteresis, TDMA shares, and co-channel
//!   interference through the Lambertian path.
//!
//! # Example
//!
//! Fan a sweep out on the deterministic runner: each `(point,
//! replicate)` task gets its own keyed RNG stream, so the result is the
//! same at any `SMARTVLC_THREADS` — including which random numbers each
//! task draws:
//!
//! ```
//! use smartvlc_sim::{par_sweep, task_rng, TaskId};
//!
//! let points = [0.25_f64, 0.5, 0.75];
//! let grouped = par_sweep(&points, 2, 42, |&level, id: TaskId| {
//!     let mut rng = task_rng(id.seed, 0);
//!     level + 0.01 * rng.next_f64()
//! });
//! // One group per point, one entry per replicate, in submission order.
//! assert_eq!(grouped.len(), 3);
//! assert!(grouped.iter().all(|g| g.len() == 2));
//! // Re-running reproduces the exact same values, bit for bit.
//! let again = par_sweep(&points, 2, 42, |&level, id: TaskId| {
//!     let mut rng = task_rng(id.seed, 0);
//!     level + 0.01 * rng.next_f64()
//! });
//! assert_eq!(grouped, again);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod broadcast;
pub mod cell;
pub mod chaos;
pub mod daylong;
pub mod dynamic_run;
pub mod energy;
pub mod net_suite;
pub mod perception;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod static_run;
pub mod stats_util;

pub use broadcast::{run_broadcast, Seat, SeatReport};
pub use cell::{
    cell_policy_json, cell_policy_scenarios, cell_scale_json, cell_scale_scenarios, cell_scenarios,
    cell_suite_artifacts, cell_suite_json, jain_index, run_cell, run_cell_policies, run_cell_scale,
    run_cell_suite, AmbientSpec, CellConfig, CellEvent, CellReport, CellScenario, CellScheduler,
    CellSuiteSummary, CellTrafficReport, CellTrafficSpec, LinkEstimate, PolicyPoint,
    PolicyScenario, ScalePoint, SchedulerSpec,
};
pub use chaos::{
    chaos_scenarios, run_chaos_scenario, run_chaos_scenario_fec, run_chaos_suite,
    run_chaos_suite_fec, ChaosFecComparison, ChaosOutcome, ChaosScenario, ChaosSummary,
    CHAOS_FEC_NOMINAL,
};
pub use daylong::{run_day, DayReport};
pub use dynamic_run::{run_dynamic, DynamicOutcome};
pub use energy::{energy_from_trace, EnergyReport};
pub use net_suite::{
    net_scenarios, run_net_scenario, run_net_suite_fec, NetFecComparison, NetOutcome, NetScenario,
    NetSummary, NET_DURATION_S, NET_FEC_NOMINAL,
};
pub use perception::{StudyCondition, UserStudy, Viewing};
pub use runner::{
    par_map, par_sweep, par_sweep_summaries, parse_thread_count, task_rng, task_seed, thread_count,
    TaskId,
};
pub use scenario::{CellScenarioBuilder, ChaosScenarioBuilder, NetScenarioBuilder, ScenarioError};
pub use static_run::{
    run_distance_matrix, run_distance_sweep, run_incidence_matrix, run_incidence_sweep,
    run_scheme_comparison, run_scheme_matrix, StaticPoint,
};
pub use stats_util::{
    percentiles, summarize, try_percentile, try_percentiles, try_summarize, Percentiles, Summary,
};
