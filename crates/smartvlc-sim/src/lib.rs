//! # smartvlc-sim — experiment scenarios for the SmartVLC reproduction
//!
//! Each module maps to part of the paper's §6 evaluation:
//!
//! * [`static_run`] — the static scenario (§6.2): scheme comparison
//!   across 17 dimming levels (Fig. 15), throughput vs distance
//!   (Fig. 16), throughput vs incidence angle (Fig. 17).
//! * [`dynamic_run`] — the dynamic scenario (§6.3): the 67-second blind
//!   pull driving Fig. 19(a) throughput, Fig. 19(b) intensity traces and
//!   Fig. 19(c) adaptation counts.
//! * [`perception`] — the 20-subject user study, virtualized (§6.1's
//!   `fth` selection and §6.3's Table 2) with calibrated psychometric
//!   models.
//! * [`report`] — CSV/markdown table writers and a terminal plot helper
//!   so every figure generator can both print and persist its data.
//! * [`runner`] — the deterministic parallel work pool every sweep fans
//!   out on: `(point × seed)` tasks with keyed RNG streams, bit-identical
//!   results at any `SMARTVLC_THREADS`.
//!
//! Beyond the paper's own evaluation:
//!
//! * [`broadcast`] — one luminaire, many receivers (§3's plural).
//! * [`energy`] — the intro's energy-saving motivation, integrated from
//!   the LED trace.
//! * [`daylong`] — planning-level whole-day runs over a diurnal ambient
//!   profile (control plane identical to the live link; per-slot noise
//!   replaced by the analytic rate).
//! * [`chaos`] — scheduled channel faults (spikes, occlusion, drift,
//!   slips, saturation, flaky uplink) against the self-healing link,
//!   with same-seed fault-free controls.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod broadcast;
pub mod chaos;
pub mod daylong;
pub mod dynamic_run;
pub mod energy;
pub mod perception;
pub mod report;
pub mod runner;
pub mod static_run;
pub mod stats_util;

pub use broadcast::{run_broadcast, Seat, SeatReport};
pub use chaos::{
    chaos_scenarios, run_chaos_scenario, run_chaos_suite, ChaosOutcome, ChaosScenario, ChaosSummary,
};
pub use daylong::{run_day, DayReport};
pub use dynamic_run::{run_dynamic, DynamicOutcome};
pub use energy::{energy_from_trace, EnergyReport};
pub use perception::{StudyCondition, UserStudy, Viewing};
pub use runner::{
    par_map, par_sweep, par_sweep_summaries, parse_thread_count, task_rng, task_seed, thread_count,
    TaskId,
};
pub use static_run::{
    run_distance_matrix, run_distance_sweep, run_incidence_matrix, run_incidence_sweep,
    run_scheme_comparison, run_scheme_matrix, StaticPoint,
};
pub use stats_util::{summarize, try_summarize, Summary};
