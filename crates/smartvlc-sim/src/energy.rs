//! Energy accounting — the paper's opening motivation, made measurable.
//!
//! "Lighting consumes around one fifth of the world's electricity […] An
//! effective way to reduce this high energy footprint is to use smart
//! lighting systems." The LED's electrical draw scales with its duty
//! cycle (PWM dimming), so the energy story of a scenario falls straight
//! out of the LED-level trace: a smart luminaire spends
//! `P_max · ∫ l(t) dt` against a dumb luminaire's `P_max · T`.

use serde::{Deserialize, Serialize};
use smartvlc_link::link::TracePoint;

/// Energy summary of one scenario run.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Wall-clock covered by the trace, seconds.
    pub duration_s: f64,
    /// Energy the smart luminaire consumed, joules.
    pub smart_j: f64,
    /// Energy a full-brightness (non-smart) luminaire would consume, J.
    pub always_on_j: f64,
    /// Fractional saving.
    pub saving: f64,
    /// Mean LED duty over the run.
    pub mean_duty: f64,
}

/// Integrate the LED trace of a link run into an energy report.
///
/// `led_power_w` is the luminaire's full-brightness electrical draw
/// (the paper's Philips luminaire: 4.7 W).
pub fn energy_from_trace(trace: &[TracePoint], led_power_w: f64) -> Option<EnergyReport> {
    if trace.len() < 2 {
        return None;
    }
    let mut smart_j = 0.0;
    let mut duty_integral = 0.0;
    for w in trace.windows(2) {
        let dt = w[1].t_s - w[0].t_s;
        // Trapezoid over the LED level.
        let duty = 0.5 * (w[0].led + w[1].led);
        smart_j += led_power_w * duty * dt;
        duty_integral += duty * dt;
    }
    let duration_s = trace.last()?.t_s - trace.first()?.t_s;
    let always_on_j = led_power_w * duration_s;
    Some(EnergyReport {
        duration_s,
        smart_j,
        always_on_j,
        saving: 1.0 - smart_j / always_on_j,
        mean_duty: duty_integral / duration_s,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(t_s: f64, led: f64) -> TracePoint {
        TracePoint {
            t_s,
            ambient: 1.0 - led,
            led,
        }
    }

    #[test]
    fn constant_half_duty_saves_half() {
        let trace = vec![pt(0.0, 0.5), pt(10.0, 0.5)];
        let r = energy_from_trace(&trace, 4.7).unwrap();
        assert!((r.smart_j - 4.7 * 0.5 * 10.0).abs() < 1e-9);
        assert!((r.saving - 0.5).abs() < 1e-12);
        assert!((r.mean_duty - 0.5).abs() < 1e-12);
    }

    #[test]
    fn trapezoid_handles_ramps() {
        // LED ramps 1.0 -> 0.0 over 10 s: mean duty 0.5.
        let trace: Vec<TracePoint> = (0..=10)
            .map(|i| pt(i as f64, 1.0 - i as f64 / 10.0))
            .collect();
        let r = energy_from_trace(&trace, 4.7).unwrap();
        assert!((r.mean_duty - 0.5).abs() < 1e-9);
        assert!((r.saving - 0.5).abs() < 1e-9);
    }

    #[test]
    fn degenerate_traces_rejected() {
        assert!(energy_from_trace(&[], 4.7).is_none());
        assert!(energy_from_trace(&[pt(0.0, 0.3)], 4.7).is_none());
    }

    #[test]
    fn dynamic_scenario_saves_energy() {
        // The blind-pull run: the LED spends most of the day below full
        // brightness, so the smart system saves what ambient provides.
        let outcome = crate::run_dynamic(smartvlc_link::SchemeKind::Amppm, Some(6.0), 5);
        let r = energy_from_trace(&outcome.report.trace, 4.7).unwrap();
        assert!(r.saving > 0.2, "saving={}", r.saving);
        assert!(r.smart_j < r.always_on_j);
        assert!(r.mean_duty > 0.0 && r.mean_duty < 1.0);
    }
}
