//! The dynamic scenario (§6.3): ambient light changes continuously while
//! the system adapts.
//!
//! The paper pulls the motorized blind from bottom to top at constant
//! speed over 67 seconds with the transmitter and receiver 3 m apart.
//! One run produces all three panels of Fig. 19:
//!
//! * (a) per-second throughput — near-symmetric rise-and-fall mirroring
//!   the static Fig. 15 curve as the LED sweeps through its levels,
//! * (b) the ambient/LED/sum intensity traces (Goal 1: the sum stays
//!   constant),
//! * (c) cumulative adaptation adjustments for SmartVLC's
//!   perception-domain stepper versus the fixed-step "existing method"
//!   (~50% reduction).

use desim::{DetRng, SimDuration};
use smartvlc_link::{LinkConfig, LinkReport, LinkSimulation, SchemeKind};
use vlc_channel::ambient::BlindRamp;

/// Everything one dynamic run yields.
#[derive(Clone, Debug)]
pub struct DynamicOutcome {
    /// The full link report (throughput series, traces, adaptation).
    pub report: LinkReport,
    /// Fractional reduction in adaptation steps vs the fixed baseline
    /// (paper: ~0.5).
    pub adaptation_reduction: f64,
}

/// Run the paper's dynamic scenario.
///
/// `duration_s` defaults to the paper's 67 s pull when `None`; shorter
/// values scale the blind ramp to match (useful for tests).
pub fn run_dynamic(scheme: SchemeKind, duration_s: Option<f64>, seed: u64) -> DynamicOutcome {
    let secs = duration_s.unwrap_or(67.0);
    let mut cfg = LinkConfig::paper_static(3.0, scheme, seed);
    cfg.duration = SimDuration::from_secs_f64(secs);
    let mut ramp = BlindRamp::paper_dynamic(DetRng::seed_from_u64(seed).fork("blind"));
    ramp.duration_s = secs;
    let mut sim = LinkSimulation::new(cfg).expect("valid scenario");
    let report = sim.run(&mut ramp);
    let (_, smart, fixed) = *report.adaptation.last().expect("at least one sense tick");
    let adaptation_reduction = if fixed == 0 {
        0.0
    } else {
        1.0 - smart as f64 / fixed as f64
    };
    DynamicOutcome {
        report,
        adaptation_reduction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome() -> DynamicOutcome {
        run_dynamic(SchemeKind::Amppm, Some(8.0), 2017)
    }

    #[test]
    fn goal1_sum_stays_constant() {
        let o = outcome();
        for p in &o.report.trace[1..] {
            assert!(
                (p.ambient + p.led - 1.0).abs() < 0.06,
                "t={}: amb={} led={}",
                p.t_s,
                p.ambient,
                p.led
            );
        }
    }

    #[test]
    fn led_trace_falls_as_blind_opens() {
        let o = outcome();
        let first = &o.report.trace[1];
        let last = o.report.trace.last().unwrap();
        assert!(last.led < first.led - 0.3, "first={first:?} last={last:?}");
        assert!(last.ambient > first.ambient + 0.3);
    }

    #[test]
    fn fig19a_throughput_rises_through_midrange() {
        // The blind sweep takes the LED from ~0.95 down through 0.5: the
        // throughput at mid-sweep beats the start (Fig. 15's hump).
        let o = run_dynamic(SchemeKind::Amppm, Some(12.0), 7);
        let tp = &o.report.throughput_bps;
        assert!(tp.len() >= 10, "{tp:?}");
        let early = tp[1].1;
        let mid_best = tp[tp.len() / 3..]
            .iter()
            .map(|&(_, b)| b)
            .fold(0.0f64, f64::max);
        assert!(mid_best > early * 1.2, "early={early} mid_best={mid_best}");
    }

    #[test]
    fn fig19c_reduction_near_half() {
        let o = outcome();
        assert!(
            (0.30..=0.65).contains(&o.adaptation_reduction),
            "reduction={}",
            o.adaptation_reduction
        );
        // Cumulative counters are monotone.
        for w in o.report.adaptation.windows(2) {
            assert!(w[1].1 >= w[0].1 && w[1].2 >= w[0].2);
        }
    }

    #[test]
    fn deterministic() {
        let a = outcome();
        let b = outcome();
        assert_eq!(a.report.stats, b.report.stats);
        assert_eq!(a.adaptation_reduction, b.adaptation_reduction);
    }
}
