//! Multi-receiver broadcast — §3's "transmitter and receivers", plural.
//!
//! A luminaire serves everyone under it: the same slot waveform reaches
//! every receiver through its own geometry (distance, off-axis angle)
//! and its own noise. The dimming level is a property of the *room*
//! (one illumination set-point), so all receivers share the modulation;
//! what differs is who can still decode it. This module runs one
//! transmitter against N receivers and reports per-receiver goodput —
//! the broadcast picture behind Fig. 16/17's single-receiver sweeps.

use crate::runner::par_map;
use desim::{DetRng, SimDuration};
use smartvlc_core::SystemConfig;
use smartvlc_link::mac::MacHeader;
use smartvlc_link::{Receiver, RxEvent, SchemeKind, Transmitter};
use vlc_channel::link::{ChannelConfig, OpticalChannel, RxScratch};

/// One receiver's placement.
#[derive(Clone, Copy, Debug)]
pub struct Seat {
    /// Distance from the luminaire, metres.
    pub distance_m: f64,
    /// Off-axis angle, degrees.
    pub off_axis_deg: f64,
}

/// Per-receiver outcome of a broadcast run.
#[derive(Clone, Copy, Debug)]
pub struct SeatReport {
    /// The seat.
    pub seat: Seat,
    /// Frames decoded with a clean CRC.
    pub frames_ok: u64,
    /// Frames observed but CRC-failed.
    pub frames_bad: u64,
    /// Goodput, bit/s.
    pub goodput_bps: f64,
}

/// Broadcast `duration` of AMPPM traffic at dimming level `level` to all
/// `seats` simultaneously, under the bright-office ambient.
///
/// Seats fan out on the work pool: the transmit waveform is a pure
/// function of `seed` (the TX stream is `root.fork("tx")`, untouched by
/// any receiver), so each seat task regenerates it locally and runs only
/// its own channel stream `root.fork_idx(seat)`. Re-encoding the frames
/// per seat costs a little redundant CPU but removes every cross-seat
/// data dependency — reports are bit-identical to the serial
/// one-TX-loop formulation at any `SMARTVLC_THREADS`.
pub fn run_broadcast(
    level: f64,
    seats: &[Seat],
    duration: SimDuration,
    seed: u64,
) -> Vec<SeatReport> {
    par_map(seats, |i, &seat| {
        run_seat(level, seat, i as u64, duration, seed)
    })
}

/// One seat's end of the broadcast: replay the (deterministic) TX frame
/// sequence through this seat's own channel and receiver.
fn run_seat(level: f64, seat: Seat, seat_idx: u64, duration: SimDuration, seed: u64) -> SeatReport {
    let cfg = SystemConfig::default();
    let ambient_lux = 8080.0;
    let root = DetRng::seed_from_u64(seed);
    let mut tx = Transmitter::new(
        cfg.clone(),
        SchemeKind::Amppm,
        ambient_lux / 10_000.0 + level,
        ambient_lux / 10_000.0,
        0.1,
        smartvlc_core::frame::format::FecMode::Off,
        root.fork("tx"),
    )
    .expect("valid config");

    let mut ch_cfg = ChannelConfig::paper_bench(seat.distance_m);
    ch_cfg.geometry.off_axis_deg = seat.off_axis_deg;
    ch_cfg.ambient_lux = ambient_lux;
    let mut channel = OpticalChannel::new(ch_cfg, root.fork_idx(seat_idx));
    let mut receiver = Receiver::new(cfg.clone()).expect("valid config");
    let (mut ok, mut bad, mut bytes) = (0u64, 0u64, 0u64);

    let tslot_ns = cfg.tslot_nanos();
    let mut elapsed_ns = 0u64;
    let mut seq = 0u16;
    let mut scratch = RxScratch::new();
    while elapsed_ns < duration.as_nanos() {
        let data = tx.random_data();
        let (_, slots) = tx.build_frame(seq, &data).expect("level carries data");
        seq = seq.wrapping_add(1);
        elapsed_ns += slots.len() as u64 * tslot_ns;
        // The SAME waveform every other seat sees, through THIS channel.
        channel.transmit_and_decide_into(&slots, &mut scratch);
        for ev in receiver.push_slots(&scratch.decided) {
            match ev {
                RxEvent::Frame { frame, .. } => {
                    ok += 1;
                    if let Some((_, body)) = MacHeader::decapsulate(&frame.payload) {
                        bytes += body.len() as u64;
                    }
                }
                RxEvent::CrcFailed { .. } => bad += 1,
            }
        }
    }
    let secs = elapsed_ns as f64 / 1e9;
    SeatReport {
        seat,
        frames_ok: ok,
        frames_bad: bad,
        goodput_bps: bytes as f64 * 8.0 / secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seats() -> Vec<Seat> {
        vec![
            Seat {
                distance_m: 1.5,
                off_axis_deg: 0.0,
            },
            Seat {
                distance_m: 3.0,
                off_axis_deg: 5.0,
            },
            Seat {
                distance_m: 3.3,
                off_axis_deg: 14.0,
            },
            Seat {
                distance_m: 5.5,
                off_axis_deg: 0.0,
            },
        ]
    }

    #[test]
    fn broadcast_reaches_seats_by_link_quality() {
        let reports = run_broadcast(0.5, &seats(), SimDuration::millis(400), 7);
        assert_eq!(reports.len(), 4);
        // Near boresight seats decode everything...
        assert!(
            reports[0].frames_ok > 0 && reports[0].frames_bad == 0,
            "{reports:?}"
        );
        assert!(reports[1].frames_ok > 0, "{reports:?}");
        // ...the wide-angle mid seat is degraded or dead...
        assert!(
            reports[2].goodput_bps < reports[1].goodput_bps,
            "{reports:?}"
        );
        // ...and the 5.5 m seat is beyond the Fig. 16 cliff.
        assert_eq!(reports[3].frames_ok, 0, "{reports:?}");
    }

    #[test]
    fn all_good_seats_see_the_same_frames() {
        // Broadcast = same waveform: two clean seats deliver identical
        // frame counts.
        let two = vec![
            Seat {
                distance_m: 1.0,
                off_axis_deg: 0.0,
            },
            Seat {
                distance_m: 2.0,
                off_axis_deg: 3.0,
            },
        ];
        let reports = run_broadcast(0.4, &two, SimDuration::millis(300), 11);
        assert_eq!(reports[0].frames_ok, reports[1].frames_ok);
        assert_eq!(reports[0].goodput_bps, reports[1].goodput_bps);
    }

    #[test]
    fn deterministic() {
        let a = run_broadcast(0.5, &seats(), SimDuration::millis(200), 3);
        let b = run_broadcast(0.5, &seats(), SimDuration::millis(200), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.frames_ok, y.frames_ok);
            assert_eq!(x.goodput_bps, y.goodput_bps);
        }
    }
}
