//! Static-scenario experiments (§6.2 of the paper).
//!
//! The static scenario fixes the window blind, so ambient light (and
//! therefore the LED's dimming level) is constant within a run. Three
//! sweeps come out of it:
//!
//! * scheme × dimming level → Fig. 15,
//! * distance at three dimming levels → Fig. 16,
//! * incidence angle at three distances → Fig. 17.
//!
//! Each point is a full end-to-end [`LinkSimulation`] run. Points are
//! independent, so every sweep fans out on [`crate::runner::par_map`] —
//! results are bit-identical at any `SMARTVLC_THREADS`, because each
//! point's simulation derives all randomness from its own `(cfg, seed)`.

use crate::runner::par_map;
use desim::SimDuration;
use smartvlc_link::{LinkConfig, LinkSimulation, SchemeKind};
use vlc_channel::ambient::ConstantAmbient;

/// One measured point of a static sweep.
#[derive(Clone, Copy, Debug)]
pub struct StaticPoint {
    /// Target LED dimming level.
    pub dimming: f64,
    /// Link distance, metres.
    pub distance_m: f64,
    /// Receiver off-axis angle, degrees.
    pub incidence_deg: f64,
    /// Measured goodput, bit/s.
    pub goodput_bps: f64,
    /// Frame error rate.
    pub fer: f64,
}

/// The paper's static scenario fixes the blind (§6.2): ambient is the
/// constant bright-office L2 level, and the different dimming levels come
/// from varying the illumination set-point, not the ambient. (Coupling
/// ambient to the level would also vary the channel noise between the
/// compared schemes.)
const STATIC_AMBIENT_LUX: f64 = 8080.0;

fn run_point(mut cfg: LinkConfig, level: f64) -> StaticPoint {
    let lux = STATIC_AMBIENT_LUX;
    cfg.channel.ambient_lux = lux;
    // Set-point = ambient + desired LED level, so Eq. 5 lands on `level`.
    cfg.illum_target = lux / cfg.full_scale_lux + level;
    let distance_m = cfg.channel.geometry.distance_m;
    let incidence_deg = cfg.channel.geometry.off_axis_deg;
    let mut sim = LinkSimulation::new(cfg).expect("valid scenario");
    let report = sim.run(&mut ConstantAmbient { lux });
    StaticPoint {
        dimming: level,
        distance_m,
        incidence_deg,
        goodput_bps: report.mean_goodput_bps,
        fer: report.stats.frame_error_rate(),
    }
}

/// Fig. 15: goodput of a scheme across dimming levels at 3 m.
///
/// `levels` is typically the paper's 17 levels `0.10, 0.15, ..., 0.90`.
pub fn run_scheme_comparison(
    scheme: SchemeKind,
    levels: &[f64],
    duration: SimDuration,
    seed: u64,
) -> Vec<StaticPoint> {
    par_map(levels, |_, &l| {
        let mut cfg = LinkConfig::paper_static(3.0, scheme, seed);
        cfg.duration = duration;
        run_point(cfg, l)
    })
}

/// Fig. 16: goodput vs distance at fixed dimming levels.
pub fn run_distance_sweep(
    scheme: SchemeKind,
    level: f64,
    distances_m: &[f64],
    duration: SimDuration,
    seed: u64,
) -> Vec<StaticPoint> {
    par_map(distances_m, |_, &d| {
        let mut cfg = LinkConfig::paper_static(d, scheme, seed);
        cfg.duration = duration;
        run_point(cfg, level)
    })
}

/// Fig. 17: goodput vs incidence angle at a fixed distance.
pub fn run_incidence_sweep(
    scheme: SchemeKind,
    level: f64,
    distance_m: f64,
    angles_deg: &[f64],
    duration: SimDuration,
    seed: u64,
) -> Vec<StaticPoint> {
    par_map(angles_deg, |_, &a| {
        let mut cfg = LinkConfig::paper_static(distance_m, scheme, seed);
        cfg.channel.geometry.off_axis_deg = a;
        cfg.duration = duration;
        run_point(cfg, level)
    })
}

/// The paper's 17 evaluation dimming levels: 0.10, 0.15, ..., 0.90.
pub fn paper_levels() -> Vec<f64> {
    (2..=18).map(|i| i as f64 / 20.0).collect()
}

/// Fig. 15 as one flat fan-out: every `(scheme × level)` cell is an
/// independent task on the pool, so a 3-scheme × 17-level figure keeps
/// all workers busy instead of parallelizing one scheme at a time.
/// Returns one sweep per scheme, in scheme order — cell values are
/// identical to per-scheme [`run_scheme_comparison`] calls.
pub fn run_scheme_matrix(
    schemes: &[SchemeKind],
    levels: &[f64],
    duration: SimDuration,
    seed: u64,
) -> Vec<Vec<StaticPoint>> {
    let cells: Vec<(SchemeKind, f64)> = schemes
        .iter()
        .flat_map(|&s| levels.iter().map(move |&l| (s, l)))
        .collect();
    let flat = par_map(&cells, |_, &(scheme, l)| {
        let mut cfg = LinkConfig::paper_static(3.0, scheme, seed);
        cfg.duration = duration;
        run_point(cfg, l)
    });
    flat.chunks(levels.len().max(1))
        .map(<[_]>::to_vec)
        .collect()
}

/// Fig. 16 as one flat fan-out over `(level × distance)` cells; returns
/// one distance sweep per level, matching per-level
/// [`run_distance_sweep`] calls cell for cell.
pub fn run_distance_matrix(
    scheme: SchemeKind,
    levels: &[f64],
    distances_m: &[f64],
    duration: SimDuration,
    seed: u64,
) -> Vec<Vec<StaticPoint>> {
    let cells: Vec<(f64, f64)> = levels
        .iter()
        .flat_map(|&l| distances_m.iter().map(move |&d| (l, d)))
        .collect();
    let flat = par_map(&cells, |_, &(l, d)| {
        let mut cfg = LinkConfig::paper_static(d, scheme, seed);
        cfg.duration = duration;
        run_point(cfg, l)
    });
    flat.chunks(distances_m.len().max(1))
        .map(<[_]>::to_vec)
        .collect()
}

/// Fig. 17 as one flat fan-out over `(distance × angle)` cells; returns
/// one angle sweep per distance, matching per-distance
/// [`run_incidence_sweep`] calls cell for cell.
pub fn run_incidence_matrix(
    scheme: SchemeKind,
    level: f64,
    distances_m: &[f64],
    angles_deg: &[f64],
    duration: SimDuration,
    seed: u64,
) -> Vec<Vec<StaticPoint>> {
    let cells: Vec<(f64, f64)> = distances_m
        .iter()
        .flat_map(|&d| angles_deg.iter().map(move |&a| (d, a)))
        .collect();
    let flat = par_map(&cells, |_, &(d, a)| {
        let mut cfg = LinkConfig::paper_static(d, scheme, seed);
        cfg.channel.geometry.off_axis_deg = a;
        cfg.duration = duration;
        run_point(cfg, level)
    });
    flat.chunks(angles_deg.len().max(1))
        .map(<[_]>::to_vec)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short() -> SimDuration {
        SimDuration::millis(400)
    }

    #[test]
    fn paper_levels_are_17() {
        let l = paper_levels();
        assert_eq!(l.len(), 17);
        assert_eq!(l[0], 0.10);
        assert_eq!(l[16], 0.90);
    }

    #[test]
    fn fig15_shape_holds_on_spot_checks() {
        // AMPPM >= MPPM at an extreme level; OOK-CT wins slightly at 0.5.
        let amppm = run_scheme_comparison(SchemeKind::Amppm, &[0.15, 0.5], short(), 1);
        let mppm = run_scheme_comparison(SchemeKind::Mppm(20), &[0.15, 0.5], short(), 1);
        let ook = run_scheme_comparison(SchemeKind::OokCt, &[0.15, 0.5], short(), 1);
        assert!(
            amppm[0].goodput_bps > mppm[0].goodput_bps,
            "amppm={} mppm={}",
            amppm[0].goodput_bps,
            mppm[0].goodput_bps
        );
        assert!(
            amppm[0].goodput_bps > 1.5 * ook[0].goodput_bps,
            "amppm={} ook={}",
            amppm[0].goodput_bps,
            ook[0].goodput_bps
        );
        assert!(
            ook[1].goodput_bps > amppm[1].goodput_bps,
            "ook={} amppm={} at l=0.5",
            ook[1].goodput_bps,
            amppm[1].goodput_bps
        );
    }

    #[test]
    fn fig16_cliff_is_present() {
        let pts = run_distance_sweep(SchemeKind::Amppm, 0.5, &[2.0, 3.0, 4.5], short(), 2);
        // Flat region then collapse.
        assert!(pts[1].goodput_bps > 0.85 * pts[0].goodput_bps, "{pts:?}");
        assert!(pts[2].goodput_bps < 0.2 * pts[0].goodput_bps, "{pts:?}");
    }

    #[test]
    fn fig17_longer_distance_cuts_off_earlier() {
        let near = run_incidence_sweep(SchemeKind::Amppm, 0.5, 1.3, &[0.0, 16.0], short(), 3);
        let far = run_incidence_sweep(SchemeKind::Amppm, 0.5, 3.3, &[0.0, 16.0], short(), 3);
        // At 1.3 m the link holds through 16 degrees...
        assert!(near[1].goodput_bps > 0.8 * near[0].goodput_bps, "{near:?}");
        // ...at 3.3 m it is essentially gone there.
        assert!(far[1].goodput_bps < 0.3 * far[0].goodput_bps, "{far:?}");
    }

    #[test]
    fn run_point_realizes_the_requested_level() {
        // The set-point arithmetic must land the LED on the asked level.
        let pts = run_scheme_comparison(SchemeKind::Amppm, &[0.3], short(), 9);
        assert_eq!(pts[0].dimming, 0.3);
        assert!(pts[0].goodput_bps > 0.0);
    }
}
