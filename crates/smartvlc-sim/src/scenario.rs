//! One scenario-construction API for every battery.
//!
//! The cell, chaos and net batteries each used to assemble their
//! scenario lists from bare struct literals — positional, unvalidated,
//! and three different shapes to learn. This module gives all three the
//! same builder idiom: start from a named builder, set what differs from
//! the defaults, and `build()` into the battery's scenario type or get a
//! typed [`ScenarioError`] explaining what was invalid.
//!
//! ```
//! use smartvlc_sim::scenario::CellScenarioBuilder;
//! use smartvlc_sim::cell::AmbientSpec;
//!
//! let sc = CellScenarioBuilder::new()
//!     .grid(4, 4)
//!     .users(12)
//!     .ambient(AmbientSpec::Constant { lux: 3000.0 })
//!     .build()
//!     .expect("a 4x4 grid with 12 users is valid");
//! assert_eq!(sc.name, "grid4x4_users12");
//!
//! let err = CellScenarioBuilder::new().users(0).build().unwrap_err();
//! assert!(err.to_string().contains("user"));
//! ```
//!
//! The stock batteries ([`crate::cell::cell_scenarios`],
//! [`crate::chaos::chaos_scenarios`], [`crate::net_suite::net_scenarios`])
//! are themselves constructed through these builders, so the validation
//! here is exercised on every suite run.

use crate::cell::{
    AmbientSpec, CellConfig, CellScenario, CellTrafficSpec, HandoverPolicy, SchedulerSpec,
    WaypointModel,
};
use crate::chaos::ChaosScenario;
use crate::net_suite::NetScenario;
use smartvlc_net::WorkloadSpec;
use std::fmt;
use vlc_channel::faults::FaultEvent;

/// Why a scenario failed to build.
#[derive(Clone, Debug, PartialEq)]
pub enum ScenarioError {
    /// The scenario name is empty (it doubles as the JSON key, so it
    /// must be a non-empty identifier).
    EmptyName,
    /// The grid has a zero extent.
    InvalidGrid {
        /// Requested extent along x.
        nx: usize,
        /// Requested extent along y.
        ny: usize,
    },
    /// A cell scenario needs at least one mobile user.
    NoUsers,
    /// The simulation horizon is empty (zero ticks).
    EmptyHorizon,
    /// The tick length must be positive and finite.
    InvalidTick {
        /// The rejected tick length, s.
        tick_s: f64,
    },
    /// The grid pitch must be positive and finite.
    InvalidPitch {
        /// The rejected pitch, m.
        pitch_m: f64,
    },
    /// The ambient-sensor quantization resolution must be finite and
    /// non-negative (`0` disables quantization).
    InvalidSensorResolution {
        /// The rejected resolution, lux.
        res_lux: f64,
    },
    /// A scheduler parameter is out of range (see
    /// [`SchedulerSpec`]).
    InvalidScheduler {
        /// What was out of range.
        reason: &'static str,
    },
    /// A net scenario needs at least one workload flow.
    NoWorkloads,
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ScenarioError::EmptyName => write!(f, "scenario name must be non-empty"),
            ScenarioError::InvalidGrid { nx, ny } => {
                write!(f, "grid must be at least 1x1, got {nx}x{ny}")
            }
            ScenarioError::NoUsers => write!(f, "cell scenario needs at least one mobile user"),
            ScenarioError::EmptyHorizon => write!(f, "simulation horizon must be at least 1 tick"),
            ScenarioError::InvalidTick { tick_s } => {
                write!(f, "tick length must be positive and finite, got {tick_s} s")
            }
            ScenarioError::InvalidPitch { pitch_m } => {
                write!(f, "grid pitch must be positive and finite, got {pitch_m} m")
            }
            ScenarioError::InvalidSensorResolution { res_lux } => write!(
                f,
                "sensor resolution must be finite and >= 0 lux, got {res_lux}"
            ),
            ScenarioError::InvalidScheduler { reason } => {
                write!(f, "invalid scheduler: {reason}")
            }
            ScenarioError::NoWorkloads => {
                write!(f, "net scenario needs at least one workload flow")
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

/// Builder for one point of the cell battery: a grid of luminaires, a
/// user population, and the knobs that shape the run.
///
/// Defaults are [`CellConfig::standard`] on a 2×2 grid with 2 users; the
/// name defaults to `grid{nx}x{ny}_users{n}` (the battery's JSON key
/// convention) unless overridden with [`CellScenarioBuilder::name`].
#[derive(Clone, Debug)]
pub struct CellScenarioBuilder {
    name: Option<String>,
    cfg: CellConfig,
}

impl CellScenarioBuilder {
    /// Start from the standard configuration (2×2 grid, 2 users).
    pub fn new() -> CellScenarioBuilder {
        CellScenarioBuilder {
            name: None,
            cfg: CellConfig::standard(2, 2, 2),
        }
    }

    /// Override the auto-generated `grid{nx}x{ny}_users{n}` name.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Grid extent (luminaires along x and y).
    pub fn grid(mut self, nx: usize, ny: usize) -> Self {
        self.cfg.nx = nx;
        self.cfg.ny = ny;
        self
    }

    /// Grid pitch, m (one luminaire per `pitch × pitch` cell).
    pub fn pitch_m(mut self, pitch_m: f64) -> Self {
        self.cfg.pitch_m = pitch_m;
        self
    }

    /// Number of mobile users in the room.
    pub fn users(mut self, n_users: usize) -> Self {
        self.cfg.n_users = n_users;
        self
    }

    /// Simulation horizon: tick count and tick length.
    pub fn horizon(mut self, ticks: u32, tick_s: f64) -> Self {
        self.cfg.ticks = ticks;
        self.cfg.tick_s = tick_s;
        self
    }

    /// User mobility model.
    pub fn mobility(mut self, model: WaypointModel) -> Self {
        self.cfg.mobility = model;
        self
    }

    /// The shared ambient field driving adaptation.
    pub fn ambient(mut self, ambient: AmbientSpec) -> Self {
        self.cfg.ambient = ambient;
        self
    }

    /// Handover (TDMA admission) tuning.
    pub fn policy(mut self, policy: HandoverPolicy) -> Self {
        self.cfg.policy = policy;
        self
    }

    /// Ambient-sensor quantization resolution, lux (`0` disables — the
    /// artifact-stable default; see [`CellConfig::sensor_res_lux`]).
    pub fn sensor_resolution_lux(mut self, res_lux: f64) -> Self {
        self.cfg.sensor_res_lux = res_lux;
        self
    }

    /// The TDMA scheduling policy (default [`SchedulerSpec::EqualShare`],
    /// the historical bit-exact scheduler).
    pub fn scheduler(mut self, scheduler: SchedulerSpec) -> Self {
        self.cfg.scheduler = scheduler;
        self
    }

    /// What the users download (default [`CellTrafficSpec::Saturated`],
    /// the historical full-buffer model).
    pub fn traffic(mut self, traffic: CellTrafficSpec) -> Self {
        self.cfg.traffic = traffic;
        self
    }

    /// Arbitrary access to the underlying [`CellConfig`] for knobs
    /// without a dedicated setter.
    pub fn configure(mut self, f: impl FnOnce(&mut CellConfig)) -> Self {
        f(&mut self.cfg);
        self
    }

    /// Validate and assemble the scenario.
    pub fn build(self) -> Result<CellScenario, ScenarioError> {
        let cfg = self.cfg;
        if cfg.nx == 0 || cfg.ny == 0 {
            return Err(ScenarioError::InvalidGrid {
                nx: cfg.nx,
                ny: cfg.ny,
            });
        }
        if cfg.n_users == 0 {
            return Err(ScenarioError::NoUsers);
        }
        if cfg.ticks == 0 {
            return Err(ScenarioError::EmptyHorizon);
        }
        if !(cfg.tick_s.is_finite() && cfg.tick_s > 0.0) {
            return Err(ScenarioError::InvalidTick { tick_s: cfg.tick_s });
        }
        if !(cfg.pitch_m.is_finite() && cfg.pitch_m > 0.0) {
            return Err(ScenarioError::InvalidPitch {
                pitch_m: cfg.pitch_m,
            });
        }
        if !(cfg.sensor_res_lux.is_finite() && cfg.sensor_res_lux >= 0.0) {
            return Err(ScenarioError::InvalidSensorResolution {
                res_lux: cfg.sensor_res_lux,
            });
        }
        match cfg.scheduler {
            SchedulerSpec::EqualShare => {}
            SchedulerSpec::ProportionalFair {
                ewma_ticks,
                fairness_exp,
            } => {
                if ewma_ticks == 0 {
                    return Err(ScenarioError::InvalidScheduler {
                        reason: "proportional-fair EWMA window must be at least 1 tick",
                    });
                }
                if !(fairness_exp.is_finite() && fairness_exp >= 0.0) {
                    return Err(ScenarioError::InvalidScheduler {
                        reason: "proportional-fair fairness exponent must be finite and >= 0",
                    });
                }
            }
            SchedulerSpec::CoordinatedEdge { sinr_margin_db, .. } => {
                if !sinr_margin_db.is_finite() {
                    return Err(ScenarioError::InvalidScheduler {
                        reason: "coordinated-edge SINR margin must be finite",
                    });
                }
            }
        }
        let name = match self.name {
            Some(n) if n.is_empty() => return Err(ScenarioError::EmptyName),
            Some(n) => n,
            None => format!("grid{}x{}_users{}", cfg.nx, cfg.ny, cfg.n_users),
        };
        Ok(CellScenario { name, cfg })
    }
}

impl Default for CellScenarioBuilder {
    fn default() -> Self {
        CellScenarioBuilder::new()
    }
}

/// Builder for one chaos scenario: a name, a one-line description, and a
/// pure fault-schedule function (pure so every replicate sees the same
/// plan).
#[derive(Clone, Debug)]
pub struct ChaosScenarioBuilder {
    name: &'static str,
    description: &'static str,
    events: fn() -> Vec<FaultEvent>,
}

impl ChaosScenarioBuilder {
    /// Start a scenario named `name` with a fault-free schedule.
    pub fn new(name: &'static str) -> ChaosScenarioBuilder {
        ChaosScenarioBuilder {
            name,
            description: "",
            events: Vec::new,
        }
    }

    /// One-line description of what goes wrong.
    pub fn description(mut self, description: &'static str) -> Self {
        self.description = description;
        self
    }

    /// The fault-schedule builder (pure function).
    pub fn events(mut self, events: fn() -> Vec<FaultEvent>) -> Self {
        self.events = events;
        self
    }

    /// Validate and assemble the scenario.
    pub fn build(self) -> Result<ChaosScenario, ScenarioError> {
        if self.name.is_empty() {
            return Err(ScenarioError::EmptyName);
        }
        Ok(ChaosScenario {
            name: self.name,
            description: self.description,
            events: self.events,
        })
    }
}

/// Builder for one net-suite scenario: a workload mix plus a fault
/// schedule, both pure functions.
#[derive(Clone, Debug)]
pub struct NetScenarioBuilder {
    name: &'static str,
    description: &'static str,
    workloads: Option<fn() -> Vec<WorkloadSpec>>,
    events: fn() -> Vec<FaultEvent>,
}

impl NetScenarioBuilder {
    /// Start a scenario named `name` on a fault-free channel.
    pub fn new(name: &'static str) -> NetScenarioBuilder {
        NetScenarioBuilder {
            name,
            description: "",
            workloads: None,
            events: Vec::new,
        }
    }

    /// One-line description of the mix.
    pub fn description(mut self, description: &'static str) -> Self {
        self.description = description;
        self
    }

    /// The workload-mix builder (pure function; one MAC flow per entry).
    pub fn workloads(mut self, workloads: fn() -> Vec<WorkloadSpec>) -> Self {
        self.workloads = Some(workloads);
        self
    }

    /// The fault-schedule builder (pure function; default: fault-free).
    pub fn events(mut self, events: fn() -> Vec<FaultEvent>) -> Self {
        self.events = events;
        self
    }

    /// Validate and assemble the scenario. The workload function is
    /// invoked once here to reject empty mixes up front.
    pub fn build(self) -> Result<NetScenario, ScenarioError> {
        if self.name.is_empty() {
            return Err(ScenarioError::EmptyName);
        }
        let workloads = self.workloads.ok_or(ScenarioError::NoWorkloads)?;
        if workloads().is_empty() {
            return Err(ScenarioError::NoWorkloads);
        }
        Ok(NetScenario {
            name: self.name,
            description: self.description,
            workloads,
            events: self.events,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_builder_defaults_and_auto_name() {
        let sc = CellScenarioBuilder::new().build().expect("defaults valid");
        assert_eq!(sc.name, "grid2x2_users2");
        assert_eq!((sc.cfg.nx, sc.cfg.ny, sc.cfg.n_users), (2, 2, 2));
        let named = CellScenarioBuilder::new()
            .grid(8, 8)
            .users(100)
            .name("scale_8x8")
            .build()
            .unwrap();
        assert_eq!(named.name, "scale_8x8");
        assert_eq!(named.cfg.nx, 8);
    }

    #[test]
    fn cell_builder_rejects_each_invalid_knob_with_a_typed_error() {
        let cases: Vec<(CellScenarioBuilder, ScenarioError)> = vec![
            (
                CellScenarioBuilder::new().grid(0, 3),
                ScenarioError::InvalidGrid { nx: 0, ny: 3 },
            ),
            (CellScenarioBuilder::new().users(0), ScenarioError::NoUsers),
            (
                CellScenarioBuilder::new().horizon(0, 0.1),
                ScenarioError::EmptyHorizon,
            ),
            (
                CellScenarioBuilder::new().horizon(100, 0.0),
                ScenarioError::InvalidTick { tick_s: 0.0 },
            ),
            (
                CellScenarioBuilder::new().pitch_m(f64::NAN),
                ScenarioError::InvalidPitch { pitch_m: f64::NAN },
            ),
            (
                CellScenarioBuilder::new().sensor_resolution_lux(-1.0),
                ScenarioError::InvalidSensorResolution { res_lux: -1.0 },
            ),
            (
                CellScenarioBuilder::new().name(""),
                ScenarioError::EmptyName,
            ),
            (
                CellScenarioBuilder::new().scheduler(SchedulerSpec::ProportionalFair {
                    ewma_ticks: 0,
                    fairness_exp: 1.0,
                }),
                ScenarioError::InvalidScheduler {
                    reason: "proportional-fair EWMA window must be at least 1 tick",
                },
            ),
            (
                CellScenarioBuilder::new().scheduler(SchedulerSpec::ProportionalFair {
                    ewma_ticks: 50,
                    fairness_exp: f64::NAN,
                }),
                ScenarioError::InvalidScheduler {
                    reason: "proportional-fair fairness exponent must be finite and >= 0",
                },
            ),
            (
                CellScenarioBuilder::new().scheduler(SchedulerSpec::CoordinatedEdge {
                    sinr_margin_db: f64::INFINITY,
                    joint_serve: true,
                }),
                ScenarioError::InvalidScheduler {
                    reason: "coordinated-edge SINR margin must be finite",
                },
            ),
        ];
        for (b, want) in cases {
            let got = b.build().expect_err("must reject");
            // NaN payloads break PartialEq; compare the rendered message.
            assert_eq!(got.to_string(), want.to_string());
        }
    }

    #[test]
    fn scheduler_and_traffic_setters_reach_the_config() {
        let sc = CellScenarioBuilder::new()
            .scheduler(SchedulerSpec::proportional_fair())
            .traffic(CellTrafficSpec::NetMix)
            .build()
            .unwrap();
        assert_eq!(sc.cfg.scheduler, SchedulerSpec::proportional_fair());
        assert_eq!(sc.cfg.traffic, CellTrafficSpec::NetMix);
        // Defaults stay on the historical pair.
        let d = CellScenarioBuilder::new().build().unwrap();
        assert_eq!(d.cfg.scheduler, SchedulerSpec::EqualShare);
        assert_eq!(d.cfg.traffic, CellTrafficSpec::Saturated);
    }

    #[test]
    fn configure_reaches_knobs_without_setters() {
        let sc = CellScenarioBuilder::new()
            .configure(|c| c.frame_bits = 4096.0)
            .build()
            .unwrap();
        assert_eq!(sc.cfg.frame_bits, 4096.0);
    }

    #[test]
    fn chaos_and_net_builders_validate() {
        assert_eq!(
            ChaosScenarioBuilder::new("").build().unwrap_err(),
            ScenarioError::EmptyName
        );
        assert!(ChaosScenarioBuilder::new("quiet").build().is_ok());
        assert_eq!(
            NetScenarioBuilder::new("no_flows").build().unwrap_err(),
            ScenarioError::NoWorkloads
        );
        fn one_flow() -> Vec<WorkloadSpec> {
            vec![WorkloadSpec::iot()]
        }
        let sc = NetScenarioBuilder::new("iot")
            .description("one IoT flow")
            .workloads(one_flow)
            .build()
            .unwrap();
        assert_eq!(sc.name, "iot");
        assert_eq!(sc.workloads().len(), 1);
    }
}
