//! Random-waypoint user mobility.
//!
//! The classic indoor mobility model: each user picks a uniform waypoint
//! in the room, walks toward it at a speed drawn once per leg, pauses,
//! and repeats. Every random draw comes from the user's own keyed
//! [`DetRng`] stream, so a user's entire trajectory is a pure function of
//! `(base seed, user index)` — adding users, reordering updates, or
//! changing `SMARTVLC_THREADS` never perturbs anyone else's walk.

use super::geometry::{Position, RoomGeometry};
use desim::DetRng;
use serde::{Deserialize, Serialize};

/// Parameters of the random-waypoint walk.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct WaypointModel {
    /// Slowest leg speed, m/s.
    pub min_speed_mps: f64,
    /// Fastest leg speed, m/s.
    pub max_speed_mps: f64,
    /// Longest pause at a waypoint, ticks (drawn uniformly in `0..=max`).
    pub max_pause_ticks: u32,
}

impl WaypointModel {
    /// Office walking: 0.5–1.5 m/s legs with pauses up to 3 s at a
    /// 100 ms tick.
    pub fn office() -> WaypointModel {
        WaypointModel {
            min_speed_mps: 0.5,
            max_speed_mps: 1.5,
            max_pause_ticks: 30,
        }
    }
}

/// One mobile receiver: current position plus the state of its walk.
#[derive(Clone, Debug)]
pub struct MobileUser {
    /// User index (also the fork index of its RNG stream).
    pub id: usize,
    /// Current position on the receiver plane.
    pub pos: Position,
    target: Position,
    speed_mps: f64,
    pause_left: u32,
    rng: DetRng,
}

impl MobileUser {
    /// Spawn user `id` at a uniform position with a fresh first leg.
    /// `rng` must be this user's own keyed stream.
    pub fn new(
        id: usize,
        room: &RoomGeometry,
        model: &WaypointModel,
        mut rng: DetRng,
    ) -> MobileUser {
        let pos = Position {
            x_m: rng.next_f64() * room.width_m,
            y_m: rng.next_f64() * room.depth_m,
        };
        let mut user = MobileUser {
            id,
            pos,
            target: pos,
            speed_mps: 0.0,
            pause_left: 0,
            rng,
        };
        user.pick_leg(room, model);
        user
    }

    fn pick_leg(&mut self, room: &RoomGeometry, model: &WaypointModel) {
        self.target = Position {
            x_m: self.rng.next_f64() * room.width_m,
            y_m: self.rng.next_f64() * room.depth_m,
        };
        let span = (model.max_speed_mps - model.min_speed_mps).max(0.0);
        self.speed_mps = model.min_speed_mps + self.rng.next_f64() * span;
        self.pause_left = if model.max_pause_ticks > 0 {
            (self.rng.next_u64() % (model.max_pause_ticks as u64 + 1)) as u32
        } else {
            0
        };
    }

    /// Advance the walk by one tick of `dt_s` seconds.
    pub fn step(&mut self, room: &RoomGeometry, model: &WaypointModel, dt_s: f64) {
        if self.pause_left > 0 {
            self.pause_left -= 1;
            return;
        }
        let dx = self.target.x_m - self.pos.x_m;
        let dy = self.target.y_m - self.pos.y_m;
        let dist = dx.hypot(dy);
        let stride = self.speed_mps * dt_s;
        if dist <= stride {
            self.pos = self.target;
            self.pick_leg(room, model);
        } else {
            self.pos = room.clamp(Position {
                x_m: self.pos.x_m + dx / dist * stride,
                y_m: self.pos.y_m + dy / dist * stride,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn room() -> RoomGeometry {
        RoomGeometry::for_grid(3, 3, 2.5)
    }

    fn user(seed: u64) -> MobileUser {
        MobileUser::new(
            0,
            &room(),
            &WaypointModel::office(),
            DetRng::seed_from_u64(seed),
        )
    }

    #[test]
    fn walk_stays_inside_the_room() {
        let r = room();
        let model = WaypointModel::office();
        let mut u = user(7);
        for _ in 0..5_000 {
            u.step(&r, &model, 0.1);
            assert!((0.0..=r.width_m).contains(&u.pos.x_m), "{:?}", u.pos);
            assert!((0.0..=r.depth_m).contains(&u.pos.y_m), "{:?}", u.pos);
        }
    }

    #[test]
    fn walk_actually_moves_across_cells() {
        let r = room();
        let model = WaypointModel::office();
        let mut u = user(3);
        let start = u.pos;
        let mut max_d = 0.0f64;
        for _ in 0..600 {
            u.step(&r, &model, 0.1);
            max_d = max_d.max(start.horizontal_distance(&u.pos));
        }
        // A minute of 0.5–1.5 m/s walking must cover more than one
        // 2.5 m cell pitch.
        assert!(max_d > 2.5, "max displacement {max_d}");
    }

    #[test]
    fn per_leg_speed_is_bounded() {
        let r = room();
        let model = WaypointModel::office();
        let mut u = user(11);
        for _ in 0..2_000 {
            let before = u.pos;
            u.step(&r, &model, 0.1);
            let d = before.horizontal_distance(&u.pos);
            assert!(
                d <= model.max_speed_mps * 0.1 + 1e-9,
                "stride {d} exceeds max speed"
            );
        }
    }

    #[test]
    fn trajectory_is_a_pure_function_of_the_stream() {
        let r = room();
        let model = WaypointModel::office();
        let mut a = user(42);
        let mut b = user(42);
        for _ in 0..1_000 {
            a.step(&r, &model, 0.1);
            b.step(&r, &model, 0.1);
            assert_eq!(a.pos, b.pos);
        }
        // A different stream takes a different walk.
        let mut c = user(43);
        let mut diverged = false;
        for _ in 0..1_000 {
            c.step(&r, &model, 0.1);
            a.step(&r, &model, 0.1);
            diverged |= c.pos != a.pos;
        }
        assert!(diverged);
    }
}
