//! Pluggable per-cell TDMA scheduling policies.
//!
//! The cell simulation historically hard-coded equal-share TDMA: every
//! associated user owns `1/members` of its serving cell's planned AMPPM
//! rate, outage or not. That policy survives here as [`EqualShare`] —
//! bit-identical to the historical arithmetic, which keeps it usable as
//! the equivalence oracle — next to two policies that actually use the
//! multi-cell headroom BENCH_cell exposes (~0.78 of served user-ticks
//! are interference-limited even on small grids):
//!
//! * [`ProportionalFair`] — classic PF: serve, each tick, the user
//!   maximizing `r_est / R_ewma^α`, where `r_est` is the instantaneous
//!   deliverable rate through the operating-point cache and `R_ewma`
//!   the EWMA of the user's achieved rate. `α` (the fairness exponent)
//!   interpolates from max-throughput (`α = 0`) through classic PF
//!   (`α = 1`) toward max-min-like fairness (`α > 1`).
//! * [`CoordinatedEdge`] — equal-share airtime, plus inter-cell
//!   coordination for *cell-edge* users: when a user's estimated SINR
//!   margin falls below a threshold and the link is
//!   interference-limited, the **dominant interferer** is asked to
//!   either blank (transmit nothing — its interference term vanishes)
//!   or jointly serve (transmit the same slots — its swing adds to the
//!   signal) during that user's slice. Donated airtime is charged
//!   against the donor cell's own capacity.
//!
//! # Determinism contract
//!
//! Schedulers run inside the event core's `TdmaReschedule` phase and
//! must be pure functions of `(ScheduleContext, own state)`:
//!
//! * iterate users and cells in **ascending id order** only;
//! * break ties toward the **lowest user id** (strict `>` comparisons
//!   while scanning ascending ids do this for free);
//! * fold EWMA state in fixed user-id order at each reschedule;
//! * draw no randomness and read no ambient state outside the context.
//!
//! Under those rules a policy run is a pure function of `(cfg, seed)`
//! and byte-identical at any `SMARTVLC_THREADS`, like every other
//! battery. docs/SCHEDULING.md walks through the math and a worked
//! 2-cell example; DESIGN.md §14 states the contract precisely.
//!
//! # Example
//!
//! Build a policy from its serializable spec and run one reschedule by
//! hand (the event core does exactly this each tick):
//!
//! ```
//! use smartvlc_sim::cell::sched::{ScheduleContext, SchedulerSpec, TickPlan};
//!
//! // One cell at 1 Mbit/s planned rate, two eligible users.
//! let members = [2u32];
//! let rate_bps = [1.0e6];
//! let serving = [0usize, 0];
//! let eligible = [true, true];
//! let ctx = ScheduleContext {
//!     tick: 0,
//!     members: &members,
//!     rate_bps: &rate_bps,
//!     serving: &serving,
//!     eligible: &eligible,
//!     estimates: &[],
//! };
//!
//! let mut sched = SchedulerSpec::EqualShare.build();
//! assert!(!sched.needs_link_estimates());
//! let mut plan = TickPlan::new(2);
//! sched.reschedule(&ctx, &mut plan);
//! // Equal share: each user gets half the cell's rate and airtime.
//! assert_eq!(plan.grant_bps(0), 0.5e6);
//! assert_eq!(plan.airtime(1), 0.5);
//! assert!(plan.coord(0).is_none());
//! ```

use serde::{Deserialize, Serialize};

/// Floor on the EWMA achieved rate in the PF priority denominator, bit/s
/// — keeps a cold-start (all-zero) history from producing infinite
/// priorities while still letting starved users dominate the metric.
pub const PF_RATE_FLOOR_BPS: f64 = 1e3;

/// Per-user link estimate the event core computes at the
/// `TdmaReschedule` phase (through the operating-point cache, at the
/// user's current position and the tick's ambient) for policies that
/// ask for it via [`CellScheduler::needs_link_estimates`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LinkEstimate {
    /// Deliverable rate if granted the whole cell this tick, bit/s:
    /// planned AMPPM rate × analytic frame success probability.
    pub rate_bps: f64,
    /// Estimated electrical SINR at the slot detector, dB: signal swing
    /// against receiver noise plus co-channel interference.
    pub sinr_db: f64,
    /// Whether co-channel interference σ exceeds the channel's own
    /// noise σ (the battery's "interference-limited" notion).
    pub interference_limited: bool,
    /// The single interfering cell contributing the largest interference
    /// σ, if any contributes a nonzero one (ties break to the lowest
    /// cell id).
    pub dominant_cell: Option<usize>,
}

/// A coordination grant attached to one user's slice: the dominant
/// interferer either goes silent or transmits the same slots.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoordGrant {
    /// The donating (dominant interferer) cell.
    pub donor: usize,
    /// `true`: the donor jointly serves (its signal swing adds to the
    /// user's). `false`: the donor blanks (its interference vanishes).
    pub joint_serve: bool,
}

/// What the scheduler decides for one tick: per-user granted rate,
/// per-user airtime fraction of the serving cell, and optional
/// coordination grants.
///
/// `grant_bps` is the delivery contract (the event core multiplies it by
/// the frame success probability and the tick length); `airtime` is the
/// bookkeeping ledger the conservation property tests check: for every
/// cell, its members' airtime fractions plus the fractions it donates to
/// other cells' edge users must not exceed 1.
#[derive(Clone, Debug, Default)]
pub struct TickPlan {
    grant_bps: Vec<f64>,
    airtime: Vec<f64>,
    coord: Vec<Option<CoordGrant>>,
}

impl TickPlan {
    /// An empty plan for `n_users` users (all grants zero).
    pub fn new(n_users: usize) -> TickPlan {
        TickPlan {
            grant_bps: vec![0.0; n_users],
            airtime: vec![0.0; n_users],
            coord: vec![None; n_users],
        }
    }

    /// Clear every grant (start of a reschedule).
    pub fn reset(&mut self, n_users: usize) {
        self.grant_bps.clear();
        self.grant_bps.resize(n_users, 0.0);
        self.airtime.clear();
        self.airtime.resize(n_users, 0.0);
        self.coord.clear();
        self.coord.resize(n_users, None);
    }

    /// Grant `user` a rate of `bps` over `airtime` of its serving
    /// cell's tick.
    pub fn set_grant(&mut self, user: usize, bps: f64, airtime: f64) {
        self.grant_bps[user] = bps;
        self.airtime[user] = airtime;
    }

    /// Attach a coordination grant to `user`'s slice.
    pub fn set_coord(&mut self, user: usize, grant: CoordGrant) {
        self.coord[user] = Some(grant);
    }

    /// The rate granted to `user` this tick, bit/s (0 = not scheduled).
    pub fn grant_bps(&self, user: usize) -> f64 {
        self.grant_bps[user]
    }

    /// The airtime fraction granted to `user` this tick.
    pub fn airtime(&self, user: usize) -> f64 {
        self.airtime[user]
    }

    /// The coordination grant attached to `user`'s slice, if any.
    pub fn coord(&self, user: usize) -> Option<CoordGrant> {
        self.coord[user]
    }

    /// Number of users this plan covers.
    pub fn len(&self) -> usize {
        self.grant_bps.len()
    }

    /// Whether the plan covers zero users.
    pub fn is_empty(&self) -> bool {
        self.grant_bps.is_empty()
    }
}

/// Everything a scheduler may read when recomputing grants at the
/// `TdmaReschedule` phase. All slices are indexed by cell or user id;
/// the values are this tick's (senses and walks have already fired).
#[derive(Clone, Copy, Debug)]
pub struct ScheduleContext<'a> {
    /// The tick being scheduled.
    pub tick: u32,
    /// Per cell: associated users (outage or not — the slot reservation
    /// the handover machine relies on).
    pub members: &'a [u32],
    /// Per cell: planned AMPPM rate at the current LED level, bit/s.
    pub rate_bps: &'a [f64],
    /// Per user: serving cell id.
    pub serving: &'a [usize],
    /// Per user: whether a grant event fires this tick (false during
    /// association outage — the user's slot stays reserved but nothing
    /// can be delivered).
    pub eligible: &'a [bool],
    /// Per user: link estimates, or **empty** when the active policy's
    /// [`CellScheduler::needs_link_estimates`] returned `false` (the
    /// estimates cost one operating-point query per eligible user per
    /// tick, so the equal-share path skips them to stay bit-identical
    /// to the historical scheduler, opcache accounting included).
    pub estimates: &'a [LinkEstimate],
}

impl<'a> ScheduleContext<'a> {
    /// Number of users.
    pub fn n_users(&self) -> usize {
        self.serving.len()
    }

    /// Number of cells.
    pub fn n_cells(&self) -> usize {
        self.members.len()
    }
}

/// Counters a policy accumulates over a run; folded into the
/// [`CellReport`](super::CellReport) and the `sim.cell.sched.*`
/// telemetry at the end.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Coordination grants issued (one per edge user per tick granted).
    pub coord_grants: u64,
    /// Coordination requests dropped because the donor cell's airtime
    /// ledger was exhausted.
    pub coord_blocked: u64,
}

/// A deterministic per-cell TDMA scheduling policy.
///
/// The event core calls [`reschedule`](CellScheduler::reschedule) once
/// per tick at the `TdmaReschedule` phase (after senses and walks,
/// before grants) and [`on_delivered`](CellScheduler::on_delivered)
/// once per granted user as each grant fires, in ascending user-id
/// order. Implementations must follow the determinism contract in the
/// [module docs](self) (fixed iteration order, lowest-id tie-breaks, no
/// randomness); DESIGN.md §14 spells it out.
pub trait CellScheduler: Send {
    /// Stable policy name (the BENCH_cell JSON key).
    fn name(&self) -> &'static str;

    /// Whether [`ScheduleContext::estimates`] must be populated. The
    /// estimates cost one operating-point query per eligible user per
    /// tick; [`EqualShare`] declines so its opcache accounting stays
    /// bit-identical to the historical scheduler.
    fn needs_link_estimates(&self) -> bool {
        false
    }

    /// Recompute this tick's grants into `plan` (already reset to
    /// `ctx.n_users()` zeroed entries).
    fn reschedule(&mut self, ctx: &ScheduleContext<'_>, plan: &mut TickPlan);

    /// Observe one fired grant: `achieved_bps` is the rate actually
    /// delivered over the tick (granted rate × frame success; 0 when the
    /// user held no grant). Called in ascending user-id order.
    fn on_delivered(&mut self, _user: usize, _achieved_bps: f64) {}

    /// Run-level counters for the report (default: all zero).
    fn stats(&self) -> SchedStats {
        SchedStats::default()
    }
}

/// Serializable scheduler selection for [`CellConfig`](super::CellConfig)
/// — the config stays `Copy`/serde-able while the policy object itself
/// is built per run via [`SchedulerSpec::build`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub enum SchedulerSpec {
    /// Equal round-robin TDMA shares — the historical policy, bit-exact.
    #[default]
    EqualShare,
    /// Proportional-fair: serve `argmax r_est / R_ewma^α` per cell per
    /// tick.
    ProportionalFair {
        /// EWMA window in ticks (the achieved-rate average forgets with
        /// constant `1/ewma_ticks` per tick). Must be ≥ 1.
        ewma_ticks: u32,
        /// Fairness exponent α ≥ 0: 0 = max throughput, 1 = classic PF,
        /// larger = closer to max-min fairness.
        fairness_exp: f64,
    },
    /// Equal shares plus dominant-interferer coordination for cell-edge
    /// users.
    CoordinatedEdge {
        /// Coordinate users whose estimated SINR falls below this, dB
        /// (only when the link is also interference-limited).
        sinr_margin_db: f64,
        /// `true`: donors jointly serve; `false`: donors blank.
        joint_serve: bool,
    },
}

impl SchedulerSpec {
    /// Proportional fair at the battery defaults: a 5-second window
    /// (50 × 100 ms ticks) and classic `α = 1`.
    pub fn proportional_fair() -> SchedulerSpec {
        SchedulerSpec::ProportionalFair {
            ewma_ticks: 50,
            fairness_exp: 1.0,
        }
    }

    /// Coordinated edge at the battery defaults: joint serving below a
    /// 9 dB SINR margin (roughly the bottom quartile of served ticks on
    /// the reference 4×4 grid).
    pub fn coordinated_edge() -> SchedulerSpec {
        SchedulerSpec::CoordinatedEdge {
            sinr_margin_db: 9.0,
            joint_serve: true,
        }
    }

    /// Stable policy name (the BENCH_cell JSON key).
    pub fn name(&self) -> &'static str {
        match *self {
            SchedulerSpec::EqualShare => "equal_share",
            SchedulerSpec::ProportionalFair { .. } => "proportional_fair",
            SchedulerSpec::CoordinatedEdge { .. } => "coordinated_edge",
        }
    }

    /// Build the policy object for one run.
    pub fn build(&self) -> Box<dyn CellScheduler> {
        match *self {
            SchedulerSpec::EqualShare => Box::new(EqualShare),
            SchedulerSpec::ProportionalFair {
                ewma_ticks,
                fairness_exp,
            } => Box::new(ProportionalFair::new(ewma_ticks, fairness_exp)),
            SchedulerSpec::CoordinatedEdge {
                sinr_margin_db,
                joint_serve,
            } => Box::new(CoordinatedEdge::new(sinr_margin_db, joint_serve)),
        }
    }
}

/// Equal round-robin TDMA: every associated user owns `1/members` of its
/// serving cell's planned rate, outage or not.
///
/// This reproduces the historical scheduler **bit for bit** — same
/// division order (`rate / members`), no extra operating-point queries —
/// which is what keeps the lockstep-oracle equivalence gate and the
/// BENCH_cell byte gate meaningful across the refactor.
///
/// ```
/// use smartvlc_sim::cell::sched::{EqualShare, CellScheduler, ScheduleContext, TickPlan};
///
/// // Two cells: cell 0 has 3 members (one in outage), cell 1 has 1.
/// let ctx = ScheduleContext {
///     tick: 7,
///     members: &[3, 1],
///     rate_bps: &[9.0e5, 4.0e5],
///     serving: &[0, 0, 0, 1],
///     eligible: &[true, true, false, true],
///     estimates: &[],
/// };
/// let mut plan = TickPlan::new(4);
/// EqualShare.reschedule(&ctx, &mut plan);
/// assert_eq!(plan.grant_bps(0), 3.0e5); // a third of cell 0's rate
/// assert_eq!(plan.grant_bps(2), 0.0);   // in outage: slot reserved, nothing granted
/// assert_eq!(plan.grant_bps(3), 4.0e5); // alone in cell 1
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct EqualShare;

impl CellScheduler for EqualShare {
    fn name(&self) -> &'static str {
        "equal_share"
    }

    fn reschedule(&mut self, ctx: &ScheduleContext<'_>, plan: &mut TickPlan) {
        for u in 0..ctx.n_users() {
            if !ctx.eligible[u] {
                continue;
            }
            let c = ctx.serving[u];
            let m = ctx.members[c].max(1);
            // The exact historical expression: rate / members, in this
            // division order (NOT rate × (1/members) — that rounds
            // differently and would break the bit-identity gate).
            plan.set_grant(u, ctx.rate_bps[c] / m as f64, 1.0 / m as f64);
        }
    }
}

/// Proportional-fair scheduling with an EWMA achieved-rate history.
///
/// Each tick, each cell serves the single eligible member maximizing
/// `r_est / max(R_ewma, floor)^α` — the whole cell rate goes to the
/// winner, everyone else in the cell waits. Users whose history decays
/// (they lost recent contests, or sat in outage) see their priority
/// climb until they win again; `α` controls how hard the history bites.
///
/// ```
/// use smartvlc_sim::cell::sched::{
///     CellScheduler, LinkEstimate, ProportionalFair, ScheduleContext, TickPlan,
/// };
///
/// let est = |rate_bps| LinkEstimate { rate_bps, ..Default::default() };
/// let ctx = ScheduleContext {
///     tick: 0,
///     members: &[2],
///     rate_bps: &[1.0e6],
///     serving: &[0, 0],
///     eligible: &[true, true],
///     estimates: &[est(8.0e5), est(6.0e5)],
/// };
/// let mut pf = ProportionalFair::new(50, 1.0);
/// assert!(pf.needs_link_estimates());
///
/// // Cold start: equal (floored) histories, so the better channel wins.
/// let mut plan = TickPlan::new(2);
/// pf.reschedule(&ctx, &mut plan);
/// assert_eq!(plan.grant_bps(0), 1.0e6);
/// assert_eq!(plan.grant_bps(1), 0.0);
///
/// // User 0 banks its achieved rate; its history now dwarfs user 1's,
/// // so the next contest goes the other way.
/// pf.on_delivered(0, 8.0e5);
/// pf.on_delivered(1, 0.0);
/// let mut plan = TickPlan::new(2);
/// pf.reschedule(&ctx, &mut plan);
/// assert_eq!(plan.grant_bps(0), 0.0);
/// assert_eq!(plan.grant_bps(1), 1.0e6);
/// ```
#[derive(Clone, Debug)]
pub struct ProportionalFair {
    ewma_ticks: u32,
    fairness_exp: f64,
    /// Per-user EWMA of achieved rate, bit/s (fixed-order folds only).
    avg_bps: Vec<f64>,
    /// Per-user achieved rate since the last fold.
    inst_bps: Vec<f64>,
    /// Scratch: per-cell best (priority, user).
    best: Vec<Option<(f64, usize)>>,
}

impl ProportionalFair {
    /// A PF scheduler with the given EWMA window (ticks, ≥ 1) and
    /// fairness exponent (≥ 0, finite).
    pub fn new(ewma_ticks: u32, fairness_exp: f64) -> ProportionalFair {
        assert!(ewma_ticks >= 1, "EWMA window must be at least one tick");
        assert!(
            fairness_exp.is_finite() && fairness_exp >= 0.0,
            "fairness exponent must be finite and >= 0"
        );
        ProportionalFair {
            ewma_ticks,
            fairness_exp,
            avg_bps: Vec::new(),
            inst_bps: Vec::new(),
            best: Vec::new(),
        }
    }

    /// This user's current EWMA achieved rate, bit/s (0 before any fold).
    pub fn ewma_bps(&self, user: usize) -> f64 {
        self.avg_bps.get(user).copied().unwrap_or(0.0)
    }
}

impl CellScheduler for ProportionalFair {
    fn name(&self) -> &'static str {
        "proportional_fair"
    }

    fn needs_link_estimates(&self) -> bool {
        true
    }

    fn reschedule(&mut self, ctx: &ScheduleContext<'_>, plan: &mut TickPlan) {
        let n = ctx.n_users();
        self.avg_bps.resize(n, 0.0);
        self.inst_bps.resize(n, 0.0);
        self.best.clear();
        self.best.resize(ctx.n_cells(), None);

        // Fold last tick's deliveries into the history — fixed user-id
        // order, every user every tick (outage decays like a loss).
        let beta = 1.0 / self.ewma_ticks as f64;
        for u in 0..n {
            self.avg_bps[u] = (1.0 - beta) * self.avg_bps[u] + beta * self.inst_bps[u];
            self.inst_bps[u] = 0.0;
        }

        // Contest: ascending user ids with a strict `>` keeps the
        // lowest id on priority ties.
        for u in 0..n {
            if !ctx.eligible[u] {
                continue;
            }
            let c = ctx.serving[u];
            if ctx.rate_bps[c] <= 0.0 {
                continue;
            }
            let pri = ctx.estimates[u].rate_bps
                / self.avg_bps[u]
                    .max(PF_RATE_FLOOR_BPS)
                    .powf(self.fairness_exp);
            if self.best[c].is_none_or(|(best_pri, _)| pri > best_pri) {
                self.best[c] = Some((pri, u));
            }
        }
        for c in 0..ctx.n_cells() {
            if let Some((_, u)) = self.best[c] {
                plan.set_grant(u, ctx.rate_bps[c], 1.0);
            }
        }
    }

    fn on_delivered(&mut self, user: usize, achieved_bps: f64) {
        if user < self.inst_bps.len() {
            self.inst_bps[user] += achieved_bps;
        }
    }
}

/// Equal-share airtime plus dominant-interferer coordination for
/// cell-edge users.
///
/// Users whose estimated SINR sits below `sinr_margin_db` **and** whose
/// link is interference-limited get a [`CoordGrant`]: their dominant
/// interferer either blanks or jointly serves during their slice. The
/// donated airtime is charged to the donor cell's ledger — its own
/// members' shares shrink by the donated fraction — and a donor whose
/// ledger would overflow declines further requests
/// ([`SchedStats::coord_blocked`]). A user is never granted by two
/// cells independently: its data grant always comes from its serving
/// cell, and at most one donor is attached to it (the conservation
/// property the scheduling test suite checks).
///
/// ```
/// use smartvlc_sim::cell::sched::{
///     CellScheduler, CoordinatedEdge, LinkEstimate, ScheduleContext, TickPlan,
/// };
///
/// // Two cells, one user each. User 0 sits at the cell edge: low SINR,
/// // interference-limited, dominated by cell 1.
/// let edge = LinkEstimate {
///     rate_bps: 2.0e5,
///     sinr_db: 3.0,
///     interference_limited: true,
///     dominant_cell: Some(1),
/// };
/// let centre = LinkEstimate {
///     rate_bps: 9.0e5,
///     sinr_db: 30.0,
///     interference_limited: false,
///     dominant_cell: Some(0),
/// };
/// let ctx = ScheduleContext {
///     tick: 0,
///     members: &[1, 1],
///     rate_bps: &[1.0e6, 1.0e6],
///     serving: &[0, 1],
///     eligible: &[true, true],
///     estimates: &[edge, centre],
/// };
/// let mut ce = CoordinatedEdge::new(9.0, true);
/// let mut plan = TickPlan::new(2);
/// ce.reschedule(&ctx, &mut plan);
///
/// // The edge user keeps its serving-cell grant and gains a donor…
/// let cg = plan.coord(0).expect("edge user is coordinated");
/// assert_eq!(cg.donor, 1);
/// // …and the donor cell's own member pays for it with capacity.
/// assert_eq!(plan.airtime(1), 0.0); // cell 1 donated its whole tick
/// assert!(plan.coord(1).is_none());
/// assert_eq!(ce.stats().coord_grants, 1);
/// ```
#[derive(Clone, Debug)]
pub struct CoordinatedEdge {
    sinr_margin_db: f64,
    joint_serve: bool,
    stats: SchedStats,
    /// Scratch: per-cell donated airtime fraction this tick.
    donated: Vec<f64>,
}

impl CoordinatedEdge {
    /// A coordinated-edge scheduler with the given SINR threshold (dB)
    /// and donor mode (`joint_serve` true = transmit with, false =
    /// blank).
    pub fn new(sinr_margin_db: f64, joint_serve: bool) -> CoordinatedEdge {
        assert!(sinr_margin_db.is_finite(), "SINR margin must be finite");
        CoordinatedEdge {
            sinr_margin_db,
            joint_serve,
            stats: SchedStats::default(),
            donated: Vec::new(),
        }
    }
}

impl CellScheduler for CoordinatedEdge {
    fn name(&self) -> &'static str {
        "coordinated_edge"
    }

    fn needs_link_estimates(&self) -> bool {
        true
    }

    fn reschedule(&mut self, ctx: &ScheduleContext<'_>, plan: &mut TickPlan) {
        self.donated.clear();
        self.donated.resize(ctx.n_cells(), 0.0);

        // Pass 1 (ascending user ids): edge users request their dominant
        // interferer as donor; the donor's ledger caps at a full tick.
        for u in 0..ctx.n_users() {
            if !ctx.eligible[u] {
                continue;
            }
            let c = ctx.serving[u];
            if ctx.rate_bps[c] <= 0.0 {
                continue;
            }
            let est = &ctx.estimates[u];
            if est.sinr_db >= self.sinr_margin_db || !est.interference_limited {
                continue;
            }
            let Some(donor) = est.dominant_cell else {
                continue;
            };
            debug_assert_ne!(donor, c, "a cell cannot dominate its own user");
            let f = 1.0 / ctx.members[c].max(1) as f64;
            if self.donated[donor] + f > 1.0 + 1e-12 {
                self.stats.coord_blocked += 1;
                continue;
            }
            self.donated[donor] += f;
            plan.set_coord(
                u,
                CoordGrant {
                    donor,
                    joint_serve: self.joint_serve,
                },
            );
            self.stats.coord_grants += 1;
        }

        // Pass 2: equal shares scaled by what the serving cell has left
        // after its donations. Cells that donate nothing keep a capacity
        // factor of exactly 1.0, so their grants stay bit-identical to
        // plain equal share.
        for u in 0..ctx.n_users() {
            if !ctx.eligible[u] {
                continue;
            }
            let c = ctx.serving[u];
            let m = ctx.members[c].max(1);
            let cap = (1.0 - self.donated[c]).max(0.0);
            plan.set_grant(u, ctx.rate_bps[c] / m as f64 * cap, cap / m as f64);
        }
    }

    fn stats(&self) -> SchedStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(
        members: &'a [u32],
        rate_bps: &'a [f64],
        serving: &'a [usize],
        eligible: &'a [bool],
        estimates: &'a [LinkEstimate],
    ) -> ScheduleContext<'a> {
        ScheduleContext {
            tick: 0,
            members,
            rate_bps,
            serving,
            eligible,
            estimates,
        }
    }

    #[test]
    fn equal_share_reproduces_the_historical_expression() {
        let c = ctx(&[3], &[9.9e5], &[0, 0, 0], &[true, true, true], &[]);
        let mut plan = TickPlan::new(3);
        EqualShare.reschedule(&c, &mut plan);
        for u in 0..3 {
            // Bit-exact: same division, same order.
            assert_eq!(plan.grant_bps(u).to_bits(), (9.9e5_f64 / 3.0).to_bits());
        }
    }

    #[test]
    fn pf_ties_break_to_the_lowest_user_id() {
        let est = [LinkEstimate::default(), LinkEstimate::default()];
        let c = ctx(&[2], &[1.0e6], &[0, 0], &[true, true], &est);
        let mut pf = ProportionalFair::new(10, 1.0);
        let mut plan = TickPlan::new(2);
        pf.reschedule(&c, &mut plan);
        assert_eq!(plan.grant_bps(0), 1.0e6, "lowest id wins a dead tie");
        assert_eq!(plan.grant_bps(1), 0.0);
    }

    #[test]
    fn pf_alpha_zero_is_max_throughput() {
        let est = |r| LinkEstimate {
            rate_bps: r,
            ..Default::default()
        };
        let ests = [est(1.0e5), est(9.0e5)];
        let c = ctx(&[2], &[1.0e6], &[0, 0], &[true, true], &ests);
        let mut pf = ProportionalFair::new(10, 0.0);
        // Bank a huge history for user 1 — α = 0 must ignore it.
        pf.reschedule(&c, &mut TickPlan::new(2));
        pf.on_delivered(1, 1.0e9);
        let mut plan = TickPlan::new(2);
        pf.reschedule(&c, &mut plan);
        assert_eq!(plan.grant_bps(1), 1.0e6);
    }

    #[test]
    fn pf_skips_outage_users_and_dead_cells() {
        let ests = [LinkEstimate::default(); 3];
        let c = ctx(
            &[1, 1, 1],
            &[1.0e6, 0.0, 1.0e6],
            &[0, 1, 2],
            &[false, true, true],
            &ests,
        );
        let mut pf = ProportionalFair::new(10, 1.0);
        let mut plan = TickPlan::new(3);
        pf.reschedule(&c, &mut plan);
        assert_eq!(plan.grant_bps(0), 0.0, "outage user not schedulable");
        assert_eq!(plan.grant_bps(1), 0.0, "zero-rate cell grants nothing");
        assert_eq!(plan.grant_bps(2), 1.0e6);
    }

    #[test]
    fn coordinated_edge_charges_the_donor_ledger() {
        let edge = LinkEstimate {
            rate_bps: 1.0e5,
            sinr_db: 1.0,
            interference_limited: true,
            dominant_cell: Some(1),
        };
        // Cell 0: two members, one at the edge dominated by cell 1.
        // Cell 1: one member, healthy.
        let ests = [edge, LinkEstimate::default(), LinkEstimate::default()];
        let c = ctx(
            &[2, 1],
            &[1.0e6, 1.0e6],
            &[0, 0, 1],
            &[true, true, true],
            &ests,
        );
        let mut ce = CoordinatedEdge::new(9.0, false);
        let mut plan = TickPlan::new(3);
        ce.reschedule(&c, &mut plan);
        // Edge user: coordinated, donor = 1, blanking mode.
        let cg = plan.coord(0).unwrap();
        assert_eq!((cg.donor, cg.joint_serve), (1, false));
        // Cell 0 donated nothing: its members keep exact equal shares.
        assert_eq!(plan.grant_bps(0).to_bits(), (1.0e6_f64 / 2.0).to_bits());
        assert_eq!(plan.grant_bps(1).to_bits(), (1.0e6_f64 / 2.0).to_bits());
        // Cell 1 donated half a tick (the edge user's share): its own
        // member keeps the other half.
        assert_eq!(plan.grant_bps(2), 1.0e6 * 0.5);
        assert_eq!(plan.airtime(2), 0.5);
        assert_eq!(
            ce.stats(),
            SchedStats {
                coord_grants: 1,
                coord_blocked: 0
            }
        );
    }

    #[test]
    fn coordinated_edge_blocks_when_the_donor_is_exhausted() {
        // Three single-member cells all dominated by cell 0: the first
        // two requests (a full tick each at members=1… the first fills
        // the ledger) — only one fits.
        let edge = |dom| LinkEstimate {
            rate_bps: 1.0e5,
            sinr_db: 0.0,
            interference_limited: true,
            dominant_cell: Some(dom),
        };
        let ests = [LinkEstimate::default(), edge(0), edge(0)];
        let c = ctx(
            &[1, 1, 1],
            &[1.0e6; 3],
            &[0, 1, 2],
            &[true, true, true],
            &ests,
        );
        let mut ce = CoordinatedEdge::new(9.0, true);
        let mut plan = TickPlan::new(3);
        ce.reschedule(&c, &mut plan);
        assert!(plan.coord(1).is_some(), "first request fits");
        assert!(plan.coord(2).is_none(), "ledger exhausted");
        assert_eq!(ce.stats().coord_blocked, 1);
        // The donor's own member lost its whole tick to the donation.
        assert_eq!(plan.grant_bps(0), 0.0);
    }

    #[test]
    fn spec_builds_the_named_policy() {
        for (spec, name, needs) in [
            (SchedulerSpec::EqualShare, "equal_share", false),
            (
                SchedulerSpec::proportional_fair(),
                "proportional_fair",
                true,
            ),
            (SchedulerSpec::coordinated_edge(), "coordinated_edge", true),
        ] {
            let s = spec.build();
            assert_eq!(s.name(), name);
            assert_eq!(spec.name(), name);
            assert_eq!(s.needs_link_estimates(), needs);
        }
        assert_eq!(SchedulerSpec::default(), SchedulerSpec::EqualShare);
    }
}
