//! Multi-luminaire cell simulation with user mobility.
//!
//! The paper evaluates one LED serving one receiver; the smart-lighting
//! setting it targets is a **ceiling grid** of luminaires covering a room
//! of moving users. This module composes everything built so far into
//! that workload:
//!
//! * each luminaire runs its own §4.3 perception-domain adaptation and
//!   its own [`AmppmPlanner`] against a **shared** ambient model
//!   ([`vlc_channel::ambient`]) seen through a window gradient — cells
//!   near the window dim harder than cells deep in the room;
//! * each user walks a random waypoint trajectory ([`mobility`]), ranks
//!   cells by received signal strength through the Lambertian path
//!   ([`geometry`]), and hands over with hysteresis ([`handover`]);
//! * within a cell, associated users share the planned AMPPM rate by
//!   TDMA under a pluggable scheduling policy ([`sched`]): equal
//!   round-robin shares (the default, bit-identical to the historical
//!   behaviour), proportional-fair, or coordinated cell-edge serving;
//! * co-channel luminaires contribute interference at the slot detector
//!   via the same optics/photodiode path ([`geometry::interference_sigma_a`]).
//!
//! Fidelity is planning-level (the [`crate::daylong`] altitude): the tick
//! is the sensing cadence, the control plane — adaptation deadband,
//! stepping, planning — is the real one, and per-slot noise is replaced
//! by the analytic error probabilities of
//! [`vlc_channel::link::ChannelConfig::detector_with`]. Every random draw
//! comes from a keyed [`desim::DetRng`] stream per luminaire and per
//! user, so a whole-room run is a pure function of its seed and
//! bit-identical at any `SMARTVLC_THREADS`.
//!
//! Since the event-driven refactor, [`run_cell`] executes on the
//! [`desim::Scheduler`] event queue ([`event`]): every ambient sample,
//! luminaire sensing pass, user walk, TDMA recount and per-user grant is
//! a typed [`CellEvent`], and per-user work touches only the luminaires
//! inside the receiver's field of view — which is what lets the battery
//! scale to 32×32 grids serving 1000 users. The retired lockstep loop
//! survives as [`run_cell_lockstep`] (deprecated) purely as the
//! equivalence oracle: on any configuration the two produce bit-identical
//! [`CellReport`]s, and the `cell_equivalence` test suite asserts it.

pub mod event;
pub mod geometry;
pub mod handover;
pub mod mobility;
pub mod sched;
pub mod suite;
pub mod traffic;

pub use event::CellEvent;
pub use geometry::{
    ceiling_grid, cell_channel, interference_sigma_a, received_power_w, CellOptics, Luminaire,
    Position, RoomGeometry,
};
pub use handover::{Association, HandoverEvent, HandoverPolicy};
pub use mobility::{MobileUser, WaypointModel};
pub use sched::{
    CellScheduler, CoordGrant, CoordinatedEdge, EqualShare, LinkEstimate, ProportionalFair,
    SchedStats, ScheduleContext, SchedulerSpec, TickPlan,
};
pub use suite::{
    cell_policy_json, cell_policy_scenarios, cell_scale_json, cell_scale_scenarios, cell_scenarios,
    cell_suite_artifacts, cell_suite_json, run_cell_policies, run_cell_scale, run_cell_suite,
    CellScenario, CellSuiteSummary, PolicyPoint, PolicyScenario, ScalePoint,
    QUANTIZED_SENSOR_RES_LUX,
};
pub use traffic::{CellTrafficReport, CellTrafficSpec};

use desim::{DetRng, SimTime};
use serde::{Deserialize, Serialize};
use smartvlc_core::adaptation::{perceived, AdaptationStepper, PerceptionStepper};
use smartvlc_core::dimming::IlluminationTarget;
use smartvlc_core::{AmppmPlanner, DimmingLevel, SystemConfig};
use smartvlc_obs as obs;
use vlc_channel::ambient::{AmbientProfile, BlindRamp, ConstantAmbient};
use vlc_channel::detector::SlotDetector;
use vlc_channel::opcache::OperatingPointCache;

/// The ambient field a cell run adapts against.
///
/// Selected through [`crate::scenario::CellScenarioBuilder::ambient`];
/// [`AmbientSpec::PaperDynamic`] is the battery default.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum AmbientSpec {
    /// The paper's wobbling blind pull, scaled to sweep over ~2/3 of the
    /// run ([`BlindRamp::paper_dynamic`] with the run-sized duration).
    PaperDynamic,
    /// A constant field (adaptation settles once, then holds).
    Constant {
        /// The fixed illuminance, lux.
        lux: f64,
    },
    /// A smooth-step ramp without fluctuation, over the same run-sized
    /// duration as [`AmbientSpec::PaperDynamic`].
    Linearized {
        /// Illuminance at the start of the ramp, lux.
        start_lux: f64,
        /// Illuminance at the end of the ramp, lux.
        end_lux: f64,
    },
}

/// Configuration of one multi-cell run.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CellConfig {
    /// Luminaires along the room's width.
    pub nx: usize,
    /// Luminaires along the room's depth.
    pub ny: usize,
    /// Grid pitch, m (one luminaire per `pitch × pitch` cell).
    pub pitch_m: f64,
    /// Number of mobile users.
    pub n_users: usize,
    /// Simulation length in ticks.
    pub ticks: u32,
    /// Tick length, s — the ambient sensing cadence.
    pub tick_s: f64,
    /// Luminaire/receiver optics.
    pub optics: CellOptics,
    /// Handover tuning.
    pub policy: HandoverPolicy,
    /// User mobility model.
    pub mobility: WaypointModel,
    /// Per-cell normalized illumination target (ambient + LED), as in
    /// [`IlluminationTarget`].
    pub i_sum: f64,
    /// Full-scale ambient for normalization, lux.
    pub full_scale_lux: f64,
    /// Ambient-sensor noise σ at each luminaire, lux.
    pub sensor_noise_lux: f64,
    /// Link-layer frame payload, bits (sets frame error amplification).
    pub frame_bits: f64,
    /// The shared ambient field driving adaptation.
    pub ambient: AmbientSpec,
    /// Ambient-sensor quantization resolution, lux — real sensors report
    /// in finite steps, which makes operating points repeat and the
    /// per-run op-point cache earn hits. `0.0` disables quantization
    /// (the historical behaviour, and the artifact-stable default).
    pub sensor_res_lux: f64,
    /// The TDMA scheduling policy ([`sched`]). The default,
    /// [`SchedulerSpec::EqualShare`], reproduces the historical
    /// scheduler bit for bit — opcache accounting included.
    pub scheduler: SchedulerSpec,
    /// What the users download ([`traffic`]). The default,
    /// [`CellTrafficSpec::Saturated`], is the historical full-buffer
    /// model (no flow accounting).
    pub traffic: CellTrafficSpec,
}

impl CellConfig {
    /// The standard cell workload: `nx × ny` grid at 2.5 m pitch, 100 ms
    /// sensing tick, one simulated minute, office mobility and handover
    /// defaults.
    pub fn standard(nx: usize, ny: usize, n_users: usize) -> CellConfig {
        CellConfig {
            nx,
            ny,
            pitch_m: 2.5,
            n_users,
            ticks: 600,
            tick_s: 0.1,
            optics: CellOptics::office_panel(),
            policy: HandoverPolicy::standard(),
            mobility: WaypointModel::office(),
            i_sum: 1.0,
            full_scale_lux: 10_000.0,
            sensor_noise_lux: 25.0,
            frame_bits: 2048.0,
            ambient: AmbientSpec::PaperDynamic,
            sensor_res_lux: 0.0,
            scheduler: SchedulerSpec::EqualShare,
            traffic: CellTrafficSpec::Saturated,
        }
    }

    /// The room implied by the grid.
    pub fn room(&self) -> RoomGeometry {
        RoomGeometry::for_grid(self.nx, self.ny, self.pitch_m)
    }

    /// Number of luminaires.
    pub fn n_cells(&self) -> usize {
        self.nx * self.ny
    }
}

/// Daylight gradient across the room: the window wall sits at `x = 0`, so
/// a sensor's share of the shared ambient falls off with depth. The
/// factors average ≈ 1 over the room, keeping the shared profile's lux
/// scale meaningful.
fn window_gain(room: &RoomGeometry, pos: &Position) -> f64 {
    1.45 - 0.9 * (pos.x_m / room.width_m).clamp(0.0, 1.0)
}

/// Per-user outcome of a run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct UserOutcome {
    /// User index.
    pub id: usize,
    /// Payload bits delivered over the run.
    pub delivered_bits: f64,
    /// Mean goodput, bit/s.
    pub goodput_bps: f64,
    /// Completed handovers.
    pub handovers: u64,
    /// Ticks spent in association outage.
    pub outage_ticks: u64,
    /// Ticks holding a usable TDMA grant (whether or not the serving
    /// cell's planned rate was nonzero). Every tick is either a grant
    /// tick or an outage tick: `grant_ticks + outage_ticks == ticks` —
    /// the conservation law the event core's grant cancellation and
    /// re-scheduling must preserve (property-tested).
    pub grant_ticks: u64,
}

/// Per-cell outcome of a run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CellOutcome {
    /// Cell (luminaire) index.
    pub id: usize,
    /// Payload bits this cell delivered to its users.
    pub delivered_bits: f64,
    /// Time-mean LED level after adaptation.
    pub mean_led: f64,
    /// Time-mean associated users.
    pub mean_users: f64,
    /// Perception-domain adaptation steps taken.
    pub smart_steps: u64,
}

/// Everything a multi-cell run reports.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CellReport {
    /// Per-user outcomes (user order).
    pub users: Vec<UserOutcome>,
    /// Per-cell outcomes (cell order).
    pub cells: Vec<CellOutcome>,
    /// Sum of user goodputs, bit/s.
    pub aggregate_goodput_bps: f64,
    /// Total completed handovers.
    pub handovers: u64,
    /// Mean handover latency (dwell + association), seconds — `None` if
    /// no handover completed.
    pub mean_handover_latency_s: Option<f64>,
    /// Fraction of user-ticks spent in association outage.
    pub outage_fraction: f64,
    /// Fraction of served user-ticks where co-channel interference
    /// exceeded the channel's own noise σ.
    pub interference_limited_fraction: f64,
    /// Simulated wall-clock, s.
    pub duration_s: f64,
    /// Operating-point cache hits over the run (deterministic: the cache
    /// is per-run, so the hit/miss sequence is a pure function of the
    /// query sequence).
    pub opcache_hits: u64,
    /// Operating-point cache misses (= distinct operating points queried).
    pub opcache_misses: u64,
    /// Slot-equivalents processed by the analytic RX path: each served
    /// user-tick covers `tick_s / tslot_s` slots of airtime. Deterministic;
    /// the denominator for ns/slot in `cell_suite`.
    pub slots_equivalent: f64,
    /// Events delivered off the scheduler queue over the run — a pure
    /// function of `(cfg, seed)`, so it participates in the byte-equality
    /// gate. Zero when the run came from the deprecated lockstep path.
    pub events: u64,
    /// Scheduler queue-depth high-water mark. Deterministic; zero on the
    /// lockstep path.
    pub queue_peak: u64,
    /// Jain fairness index of the per-user goodputs:
    /// `(Σg)² / (n·Σg²)` — 1.0 is perfectly fair, `1/n` is one user
    /// taking everything (and, by convention, 1.0 when nothing moved).
    pub jain_fairness: f64,
    /// 5th-percentile per-user goodput (nearest rank), bit/s — the
    /// cell-edge user experience the coordinated scheduler targets.
    pub edge_p5_goodput_bps: f64,
    /// Coordination grants actually applied at delivery time (0 for
    /// policies without coordination).
    pub coord_grants: u64,
    /// Coordination requests the donor ledger rejected.
    pub coord_blocked: u64,
    /// Flow-level outcome when the run replayed the net workload mix
    /// ([`CellTrafficSpec::NetMix`]); `None` under the saturated model.
    pub traffic: Option<CellTrafficReport>,
}

pub(crate) struct LuminaireState {
    pub(crate) led: f64,
    pub(crate) rate_bps: f64,
    pub(crate) smart_steps: u64,
    pub(crate) led_sum: f64,
    pub(crate) users_sum: f64,
    pub(crate) delivered_bits: f64,
    pub(crate) rng: DetRng,
}

/// Quantize a sensed illuminance to the sensor's reporting resolution
/// (`res <= 0` disables — bit-exact identity).
pub(crate) fn quantize_lux(lux: f64, res: f64) -> f64 {
    if res > 0.0 {
        (lux / res).round() * res
    } else {
        lux
    }
}

/// Everything both simulation cores build identically from `(cfg, seed)`
/// before the first tick: geometry, planner, keyed RNG streams, the
/// shared ambient field, and the initial (strongest-cell) associations.
/// Factoring this out is what makes "the event core reproduces the
/// lockstep core bit-for-bit" a statement about the tick loop alone.
pub(crate) struct SimParts {
    pub(crate) room: RoomGeometry,
    pub(crate) grid: Vec<Luminaire>,
    pub(crate) tau_p: f64,
    pub(crate) planner: AmppmPlanner,
    pub(crate) illum: IlluminationTarget,
    pub(crate) stepper: PerceptionStepper,
    pub(crate) ambient: Box<dyn AmbientProfile>,
    pub(crate) lums: Vec<LuminaireState>,
    pub(crate) users: Vec<MobileUser>,
    pub(crate) assocs: Vec<Association>,
}

pub(crate) fn rate_for(planner: &AmppmPlanner, led: f64) -> f64 {
    planner
        .plan_clamped(DimmingLevel::clamped(led))
        .map(|p| p.rate_bps)
        .unwrap_or(0.0)
}

fn build_ambient(cfg: &CellConfig, root: &DetRng) -> Box<dyn AmbientProfile> {
    let run_duration_s = (cfg.ticks as f64 * cfg.tick_s * 0.66).max(1.0);
    match cfg.ambient {
        AmbientSpec::PaperDynamic => {
            // The shared sky: one blind pull sweeping near-dark to bright
            // sunny office over the run, so every cell adapts — at a depth
            // set by its window gradient.
            let mut a = BlindRamp::paper_dynamic(root.fork("ambient"));
            a.duration_s = run_duration_s;
            Box::new(a)
        }
        AmbientSpec::Constant { lux } => Box::new(ConstantAmbient { lux }),
        AmbientSpec::Linearized { start_lux, end_lux } => {
            Box::new(BlindRamp::linearized(start_lux, end_lux, run_duration_s))
        }
    }
}

pub(crate) fn sim_parts(cfg: &CellConfig, seed: u64) -> SimParts {
    let root = DetRng::seed_from_u64(seed);
    let room = cfg.room();
    let grid = ceiling_grid(&room, cfg.nx, cfg.ny);
    let sys = SystemConfig::default();
    let planner = AmppmPlanner::new(sys.clone()).expect("valid system config");
    let illum = IlluminationTarget::new(cfg.i_sum);
    let stepper = PerceptionStepper::new(sys.tau_p);
    let ambient = build_ambient(cfg, &root);

    let lums: Vec<LuminaireState> = grid
        .iter()
        .map(|l| LuminaireState {
            led: 1.0,
            rate_bps: rate_for(&planner, 1.0),
            smart_steps: 0,
            led_sum: 0.0,
            users_sum: 0.0,
            delivered_bits: 0.0,
            rng: root.fork("lum").fork_idx(l.id as u64),
        })
        .collect();

    let users: Vec<MobileUser> = (0..cfg.n_users)
        .map(|j| {
            MobileUser::new(
                j,
                &room,
                &cfg.mobility,
                root.fork("user").fork_idx(j as u64),
            )
        })
        .collect();

    // Initial association: strongest cell at the spawn position.
    let assocs: Vec<Association> = users
        .iter()
        .map(|u| {
            let mut best = 0usize;
            let mut best_p = f64::NEG_INFINITY;
            for l in &grid {
                let p = received_power_w(&cfg.optics, &room, &l.pos, &u.pos, 1.0);
                if p > best_p {
                    best_p = p;
                    best = l.id;
                }
            }
            Association::new(best)
        })
        .collect();

    SimParts {
        room,
        grid,
        tau_p: sys.tau_p,
        planner,
        illum,
        stepper,
        ambient,
        lums,
        users,
        assocs,
    }
}

/// The integer/float accumulators both cores advance tick by tick, and
/// the report construction they share.
pub(crate) struct RunTallies {
    pub(crate) user_bits: Vec<f64>,
    pub(crate) user_handovers: Vec<u64>,
    pub(crate) user_outage: Vec<u64>,
    pub(crate) user_grants: Vec<u64>,
    pub(crate) latency_ticks_sum: u64,
    pub(crate) handovers: u64,
    pub(crate) served_ticks: u64,
    pub(crate) interference_limited: u64,
    /// Coordination grants applied at delivery (always 0 on the lockstep
    /// path and under policies without coordination).
    pub(crate) coord_grants: u64,
    /// Coordination requests rejected by the donor ledger.
    pub(crate) coord_blocked: u64,
}

impl RunTallies {
    pub(crate) fn new(n_users: usize) -> RunTallies {
        RunTallies {
            user_bits: vec![0.0; n_users],
            user_handovers: vec![0; n_users],
            user_outage: vec![0; n_users],
            user_grants: vec![0; n_users],
            latency_ticks_sum: 0,
            handovers: 0,
            served_ticks: 0,
            interference_limited: 0,
            coord_grants: 0,
            coord_blocked: 0,
        }
    }
}

/// Jain's fairness index over per-user goodputs: `(Σg)² / (n·Σg²)`,
/// defined as 1.0 for an empty or all-zero sample (nothing moved —
/// nothing was unfair).
pub fn jain_index(goodputs: &[f64]) -> f64 {
    let sum: f64 = goodputs.iter().sum();
    let sum_sq: f64 = goodputs.iter().map(|g| g * g).sum();
    if sum_sq > 0.0 {
        sum * sum / (goodputs.len() as f64 * sum_sq)
    } else {
        1.0
    }
}

#[allow(clippy::too_many_arguments)] // internal assembly point: both cores feed it
pub(crate) fn finish_report(
    cfg: &CellConfig,
    parts: &SimParts,
    t: &RunTallies,
    opcache: &OperatingPointCache,
    tslot_s: f64,
    events: u64,
    queue_peak: u64,
    traffic: Option<CellTrafficReport>,
) -> CellReport {
    let duration_s = cfg.ticks as f64 * cfg.tick_s;
    let users_out: Vec<UserOutcome> = (0..cfg.n_users)
        .map(|j| UserOutcome {
            id: j,
            delivered_bits: t.user_bits[j],
            goodput_bps: t.user_bits[j] / duration_s,
            handovers: t.user_handovers[j],
            outage_ticks: t.user_outage[j],
            grant_ticks: t.user_grants[j],
        })
        .collect();
    let cells_out: Vec<CellOutcome> = parts
        .grid
        .iter()
        .zip(&parts.lums)
        .map(|(l, st)| CellOutcome {
            id: l.id,
            delivered_bits: st.delivered_bits,
            mean_led: st.led_sum / cfg.ticks as f64,
            mean_users: st.users_sum / cfg.ticks as f64,
            smart_steps: st.smart_steps,
        })
        .collect();
    let aggregate_goodput_bps = users_out.iter().map(|u| u.goodput_bps).sum();
    let goodputs: Vec<f64> = users_out.iter().map(|u| u.goodput_bps).collect();
    let jain_fairness = jain_index(&goodputs);
    let edge_p5_goodput_bps = crate::stats_util::try_percentile(&goodputs, 5.0).unwrap_or(0.0);
    CellReport {
        aggregate_goodput_bps,
        jain_fairness,
        edge_p5_goodput_bps,
        coord_grants: t.coord_grants,
        coord_blocked: t.coord_blocked,
        traffic,
        handovers: t.handovers,
        mean_handover_latency_s: if t.handovers > 0 {
            Some(t.latency_ticks_sum as f64 / t.handovers as f64 * cfg.tick_s)
        } else {
            None
        },
        outage_fraction: t.user_outage.iter().sum::<u64>() as f64
            / (cfg.ticks as u64 * cfg.n_users as u64) as f64,
        interference_limited_fraction: if t.served_ticks > 0 {
            t.interference_limited as f64 / t.served_ticks as f64
        } else {
            0.0
        },
        users: users_out,
        cells: cells_out,
        duration_s,
        opcache_hits: opcache.hits(),
        opcache_misses: opcache.misses(),
        slots_equivalent: t.served_ticks as f64 * (cfg.tick_s / tslot_s),
        events,
        queue_peak,
    }
}

/// Run one multi-cell scenario to completion. Deterministic per
/// `(cfg, seed)`: the shared ambient, every luminaire's sensor noise and
/// every user's walk derive from keyed forks of `seed`.
///
/// Executes on the [`desim::Scheduler`] event core ([`event`]); the
/// result is bit-identical to the retired lockstep loop
/// ([`run_cell_lockstep`]) on every configuration.
pub fn run_cell(cfg: &CellConfig, seed: u64) -> CellReport {
    event::run_cell_event(cfg, seed)
}

/// The original lockstep tick loop, kept as the equivalence oracle for
/// the event-driven core: it steps every luminaire and every user each
/// tick, scanning all cells per user, so it cannot scale past small
/// grids — but its output defines what [`run_cell`] must reproduce
/// bit-for-bit (the `cell_equivalence` test suite asserts exactly that).
///
/// Fields only the event core can measure ([`CellReport::events`],
/// [`CellReport::queue_peak`]) report 0 here.
#[deprecated(
    note = "superseded by the event-driven core behind `run_cell`; kept one release \
            as the bit-equivalence oracle (see ARCHITECTURE.md, 'Event-driven cell core')"
)]
pub fn run_cell_lockstep(cfg: &CellConfig, seed: u64) -> CellReport {
    assert!(cfg.n_cells() >= 1, "need at least one luminaire");
    assert!(cfg.n_users >= 1, "need at least one user");
    assert!(cfg.tick_s > 0.0 && cfg.ticks > 0, "need a positive horizon");
    // The oracle predates the pluggable scheduler: it hard-codes the
    // equal-share arithmetic, so it can only vouch for that policy.
    // (The traffic observer is also absent here — it perturbs nothing,
    // so equal-share fingerprints still match with it enabled.)
    assert!(
        matches!(cfg.scheduler, SchedulerSpec::EqualShare),
        "the lockstep oracle only implements the EqualShare policy"
    );
    obs::counter_add(obs::key!("sim.cell.runs"), 1);

    let SimParts {
        room,
        grid,
        tau_p,
        planner,
        illum,
        stepper,
        mut ambient,
        mut lums,
        mut users,
        mut assocs,
    } = sim_parts(cfg, seed);

    let mut tallies = RunTallies::new(cfg.n_users);
    let tslot_s = vlc_channel::link::ChannelConfig::paper_bench(1.0).tslot_s;

    // One operating-point cache per run (never process-global: a shared
    // map would make hit/miss attribution scheduling-dependent and break
    // byte-identical telemetry across thread counts). Hits appear when
    // users pause AND the ambient holds bit-exactly (constant-ambient
    // studies, unit tests); under the suite's wobbling blind ramp every
    // tick is a distinct operating point, so the miss count doubles as a
    // truthful "distinct operating points" measure and the per-frame wins
    // live in the link/broadcast memo paths instead.
    let opcache = OperatingPointCache::new();
    let mut interferers: Vec<(Position, f64)> = Vec::with_capacity(grid.len());

    let mut rss = vec![0.0f64; grid.len()];
    let mut members = vec![0u32; grid.len()];

    for tick in 0..cfg.ticks {
        let t = SimTime::from_nanos((tick as f64 * cfg.tick_s * 1e9) as u64);
        let base_lux = ambient.lux_at(t);

        // Luminaires: sense (own sensor, own noise stream), adapt through
        // the perception deadband, replan only when the level moved.
        for (st, l) in lums.iter_mut().zip(&grid) {
            let lux = quantize_lux(
                base_lux * window_gain(&room, &l.pos)
                    + st.rng.next_gaussian() * cfg.sensor_noise_lux,
                cfg.sensor_res_lux,
            );
            let norm = (lux / cfg.full_scale_lux).clamp(0.0, 1.0);
            let target = illum.led_level_for(norm).value();
            if (perceived(target) - perceived(st.led)).abs() >= tau_p {
                st.smart_steps += stepper.step_count(st.led, target) as u64;
                st.led = target;
                st.rate_bps = rate_for(&planner, target);
            }
            st.led_sum += st.led;
        }

        // Users: walk, rank cells by RSS at the *current* LED levels,
        // run the handover state machine.
        for (j, u) in users.iter_mut().enumerate() {
            u.step(&room, &cfg.mobility, cfg.tick_s);
            for (l, st) in grid.iter().zip(&lums) {
                rss[l.id] = received_power_w(&cfg.optics, &room, &l.pos, &u.pos, st.led);
            }
            if let Some(ev) = assocs[j].step(&rss, &cfg.policy) {
                tallies.handovers += 1;
                tallies.user_handovers[j] += 1;
                tallies.latency_ticks_sum += ev.latency_ticks as u64;
                obs::counter_add(obs::key!("sim.cell.handovers"), 1);
                obs::observe(
                    obs::key!("sim.cell.handover_latency_ms"),
                    (ev.latency_ticks as f64 * cfg.tick_s * 1e3) as u64,
                );
                obs::event(t, obs::key!("sim.cell.handover"), j as u64);
            }
        }

        // TDMA membership: every associated user owns an equal share of
        // its cell's planned rate, outage or not (the slot is reserved
        // while the user re-associates).
        members.iter_mut().for_each(|m| *m = 0);
        for a in &assocs {
            members[a.serving] += 1;
        }
        for (st, &m) in lums.iter_mut().zip(&members) {
            st.users_sum += m as f64;
        }

        // Delivery: analytic slot error probabilities at the user's
        // geometry and local ambient, with every co-channel luminaire's
        // modulation folded in as detector noise.
        for (j, u) in users.iter().enumerate() {
            let a = &assocs[j];
            if a.in_outage() {
                tallies.user_outage[j] += 1;
                obs::counter_add(obs::key!("sim.cell.outage_ticks"), 1);
                continue;
            }
            tallies.user_grants[j] += 1;
            let serving = a.serving;
            let rate = lums[serving].rate_bps;
            if rate <= 0.0 {
                continue;
            }
            tallies.served_ticks += 1;
            let lum_pos = &grid[serving].pos;
            let lux_here = quantize_lux(
                (base_lux * window_gain(&room, &u.pos)).max(0.0),
                cfg.sensor_res_lux,
            );
            let ch = cell_channel(&cfg.optics, &room, lum_pos, &u.pos, lux_here);
            let det = opcache.query(&ch, 1.0, false).detector;
            interferers.clear();
            interferers.extend(
                grid.iter()
                    .zip(&lums)
                    .filter(|(l, _)| l.id != serving)
                    .map(|(l, st)| (l.pos, st.led)),
            );
            let sigma_cci = interference_sigma_a(&cfg.optics, &room, &interferers, &u.pos);
            if sigma_cci > det.sigma_a {
                tallies.interference_limited += 1;
            }
            let det =
                SlotDetector::from_levels(det.mu_on_a, det.mu_off_a, det.sigma_a.hypot(sigma_cci));
            let probs = det.error_probs();
            let p_slot = 0.5 * (probs.p_off_error + probs.p_on_error);
            // Frame error amplification: a frame of `frame_bits` payload
            // occupies `frame_bits / rate` seconds of slots.
            let slots_per_frame = (cfg.frame_bits / rate / tslot_s).max(1.0);
            let p_frame_ok = (1.0 - p_slot).powf(slots_per_frame);
            let share = rate / members[serving].max(1) as f64;
            let bits = share * p_frame_ok * cfg.tick_s;
            tallies.user_bits[j] += bits;
            lums[serving].delivered_bits += bits;
        }
    }

    let parts = SimParts {
        room,
        grid,
        tau_p,
        planner,
        illum,
        stepper,
        ambient,
        lums,
        users,
        assocs,
    };
    finish_report(cfg, &parts, &tallies, &opcache, tslot_s, 0, 0, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cell_single_user_moves_data() {
        let cfg = CellConfig::standard(1, 1, 1);
        let r = run_cell(&cfg, 1);
        assert!(r.aggregate_goodput_bps > 1_000.0, "{r:?}");
        assert_eq!(r.handovers, 0, "one cell cannot hand over");
        assert_eq!(r.outage_fraction, 0.0);
    }

    #[test]
    fn mobile_users_hand_over_in_a_grid() {
        let cfg = CellConfig::standard(3, 3, 6);
        let r = run_cell(&cfg, 7);
        assert!(
            r.handovers > 0,
            "a minute of walking across 2.5 m cells must cross a boundary: {r:?}"
        );
        let lat = r.mean_handover_latency_s.expect("handovers happened");
        let expect = (cfg.policy.dwell_ticks + cfg.policy.assoc_delay_ticks) as f64 * cfg.tick_s;
        assert!((lat - expect).abs() < 1e-9, "latency {lat} vs {expect}");
        assert!(r.outage_fraction > 0.0, "handover must cost outage");
        assert!(r.outage_fraction < 0.2, "outage dominates: {r:?}");
    }

    #[test]
    fn run_is_deterministic_per_seed() {
        let cfg = CellConfig::standard(2, 2, 4);
        let a = run_cell(&cfg, 42);
        let b = run_cell(&cfg, 42);
        assert_eq!(
            a.aggregate_goodput_bps.to_bits(),
            b.aggregate_goodput_bps.to_bits()
        );
        assert_eq!(a.handovers, b.handovers);
        for (x, y) in a.users.iter().zip(&b.users) {
            assert_eq!(x.delivered_bits.to_bits(), y.delivered_bits.to_bits());
        }
        let c = run_cell(&cfg, 43);
        assert_ne!(
            a.aggregate_goodput_bps.to_bits(),
            c.aggregate_goodput_bps.to_bits(),
            "different seeds must differ"
        );
    }

    #[test]
    fn opcache_accounting_is_deterministic_and_consistent() {
        let cfg = CellConfig::standard(2, 2, 3);
        let a = run_cell(&cfg, 17);
        let b = run_cell(&cfg, 17);
        assert_eq!(a.opcache_hits, b.opcache_hits);
        assert_eq!(a.opcache_misses, b.opcache_misses);
        assert!(a.opcache_misses > 0, "served ticks must query the cache");
        // One query per served tick; slots_equivalent is that count scaled
        // by the slots each tick covers.
        let queries = (a.opcache_hits + a.opcache_misses) as f64;
        let slots_per_tick = cfg.tick_s / 8e-6;
        assert_eq!(
            a.slots_equivalent.to_bits(),
            (queries * slots_per_tick).to_bits()
        );
    }

    #[test]
    fn luminaires_adapt_to_the_window_gradient() {
        // By the end of the blind pull the window-side column sees far
        // more daylight than the deep column, so it must dim harder.
        let cfg = CellConfig::standard(3, 3, 2);
        let r = run_cell(&cfg, 5);
        let window_col: f64 = [0, 3, 6].iter().map(|&i| r.cells[i].mean_led).sum();
        let deep_col: f64 = [2, 5, 8].iter().map(|&i| r.cells[i].mean_led).sum();
        assert!(
            window_col < deep_col - 0.1,
            "window {window_col:.2} deep {deep_col:.2}"
        );
        assert!(r.cells.iter().all(|c| c.smart_steps > 0), "{r:?}");
    }

    #[test]
    fn interference_shows_up_in_dense_grids() {
        let cfg = CellConfig::standard(3, 3, 6);
        let r = run_cell(&cfg, 11);
        assert!(
            r.interference_limited_fraction > 0.05,
            "co-channel interference must matter in a 3×3 grid: {r:?}"
        );
    }

    #[test]
    fn tdma_conserves_cell_capacity() {
        // Many users in one cell share it: aggregate goodput with 8 users
        // in a 1×1 room must not exceed the single-user goodput (equal
        // shares of the same planned rate).
        let solo = run_cell(&CellConfig::standard(1, 1, 1), 9);
        let crowd = run_cell(&CellConfig::standard(1, 1, 8), 9);
        assert!(
            crowd.aggregate_goodput_bps <= solo.aggregate_goodput_bps * 1.05,
            "solo {} crowd {}",
            solo.aggregate_goodput_bps,
            crowd.aggregate_goodput_bps
        );
    }
}
