//! Room and ceiling-grid geometry for the multi-luminaire workload.
//!
//! The single-link experiments aim a narrow retail spot at a bench-mounted
//! photodiode; the smart-lighting deployment the paper targets is the
//! opposite: a ceiling grid of *wide-beam* luminaires covering a room of
//! moving users. This module maps that 3-D layout onto the existing
//! [`LambertianLink`] model: a luminaire points straight down, a receiver
//! points straight up, so the emission angle at the luminaire equals the
//! incidence angle at the photodiode — exactly the single `off_axis_deg`
//! the Lambertian model applies to both cosine terms.
//!
//! ```text
//! ceiling   ●lum───────r───────┐
//!                      \       │ drop
//!                       \ d    │
//! rx plane ──────────────▣user─┘      d = √(r² + drop²),  θ = atan(r/drop)
//! ```
//!
//! Co-channel interference rides the same path: every *other* luminaire's
//! light reaches the receiver through its own [`LambertianLink`] and the
//! photodiode's responsivity, and shows up as extra photocurrent at the
//! slot detector (see [`interference_sigma_a`]).

use serde::{Deserialize, Serialize};
use vlc_channel::link::ChannelConfig;
use vlc_channel::optics::LambertianLink;

/// A point on the receiver plane (or the ceiling), metres.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Position {
    /// Distance along the room's width axis, m.
    pub x_m: f64,
    /// Distance along the room's depth axis, m.
    pub y_m: f64,
}

impl Position {
    /// Horizontal distance to another position, m.
    pub fn horizontal_distance(&self, other: &Position) -> f64 {
        (self.x_m - other.x_m).hypot(self.y_m - other.y_m)
    }
}

/// The room: a rectangular floor plan with luminaires on the ceiling and
/// receivers carried at desk/hand height.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RoomGeometry {
    /// Room extent along x, m.
    pub width_m: f64,
    /// Room extent along y, m.
    pub depth_m: f64,
    /// Vertical drop from the luminaire plane to the receiver plane, m
    /// (ceiling height minus receiver height).
    pub drop_m: f64,
}

impl RoomGeometry {
    /// A room sized for an `nx × ny` luminaire grid at `pitch_m` spacing
    /// (one grid cell per luminaire), with the standard office drop:
    /// 3 m ceiling, receivers carried at 0.8 m.
    pub fn for_grid(nx: usize, ny: usize, pitch_m: f64) -> RoomGeometry {
        RoomGeometry {
            width_m: nx as f64 * pitch_m,
            depth_m: ny as f64 * pitch_m,
            drop_m: 2.2,
        }
    }

    /// Clamp a position into the room.
    pub fn clamp(&self, p: Position) -> Position {
        Position {
            x_m: p.x_m.clamp(0.0, self.width_m),
            y_m: p.y_m.clamp(0.0, self.depth_m),
        }
    }
}

/// One ceiling luminaire: a wide-beam panel running its own SmartVLC
/// transmitter stack.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Luminaire {
    /// Dense cell index (row-major over the grid).
    pub id: usize,
    /// Ceiling position.
    pub pos: Position,
}

/// Lay out an `nx × ny` grid of luminaires centred in their grid cells.
pub fn ceiling_grid(room: &RoomGeometry, nx: usize, ny: usize) -> Vec<Luminaire> {
    assert!(nx >= 1 && ny >= 1, "grid must have at least one luminaire");
    let dx = room.width_m / nx as f64;
    let dy = room.depth_m / ny as f64;
    let mut out = Vec::with_capacity(nx * ny);
    for j in 0..ny {
        for i in 0..nx {
            out.push(Luminaire {
                id: j * nx + i,
                pos: Position {
                    x_m: (i as f64 + 0.5) * dx,
                    y_m: (j as f64 + 0.5) * dy,
                },
            });
        }
    }
    out
}

/// Optical parameters of one cell downlink (as opposed to the paper's
/// narrow bench spot).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CellOptics {
    /// Luminaire half-power semi-angle, degrees. Ceiling panels are wide
    /// (≈ 45°, Lambertian mode m ≈ 2), not the bench's 15° spot.
    pub semi_angle_deg: f64,
    /// Receiver field of view (half-angle), degrees. A handheld receiver
    /// looks straight up with a generous acceptance cone.
    pub rx_fov_deg: f64,
    /// Luminaire full-drive optical power, W. A ceiling panel is an array
    /// of the paper's LEDs — an order of magnitude above the 1.4 W bench
    /// emitter.
    pub tx_optical_w: f64,
}

impl CellOptics {
    /// The default ceiling panel: 45° semi-angle, 70° receiver FoV, 11 W
    /// optical (≈ a 30 W-electrical office panel). Calibrated so a user
    /// directly under a luminaire at the standard 2.2 m drop sees a clean
    /// link and a user at a 2.5 m-pitch cell corner sits near the error
    /// cliff — the regime where handover decisions matter.
    pub fn office_panel() -> CellOptics {
        CellOptics {
            semi_angle_deg: 45.0,
            rx_fov_deg: 70.0,
            tx_optical_w: 11.0,
        }
    }
}

/// The [`LambertianLink`] for one luminaire→user path.
pub fn link_geometry(
    optics: &CellOptics,
    room: &RoomGeometry,
    lum: &Position,
    user: &Position,
) -> LambertianLink {
    let r = lum.horizontal_distance(user);
    let d = r.hypot(room.drop_m);
    // Down-pointing emitter, up-pointing receiver: one off-axis angle
    // serves as both emission and incidence angle.
    let theta_deg = r.atan2(room.drop_m).to_degrees();
    let mut link = LambertianLink::paper_bench(d);
    link.semi_angle_deg = optics.semi_angle_deg;
    link.rx_fov_deg = optics.rx_fov_deg;
    link.off_axis_deg = theta_deg;
    link
}

/// The [`ChannelConfig`] for one luminaire→user path: the paper's receiver
/// chain behind the cell geometry, under `ambient_lux` at the user.
pub fn cell_channel(
    optics: &CellOptics,
    room: &RoomGeometry,
    lum: &Position,
    user: &Position,
    ambient_lux: f64,
) -> ChannelConfig {
    let mut cfg = ChannelConfig::paper_bench(1.0);
    cfg.geometry = link_geometry(optics, room, lum, user);
    cfg.led.on_power_w = optics.tx_optical_w;
    cfg.ambient_lux = ambient_lux.max(0.0);
    cfg
}

/// Received signal power (W) at `user` from `lum` driving its LED at duty
/// `level` — the RSS metric handover decisions rank cells by.
pub fn received_power_w(
    optics: &CellOptics,
    room: &RoomGeometry,
    lum: &Position,
    user: &Position,
    level: f64,
) -> f64 {
    link_geometry(optics, room, lum, user).received_power_w(optics.tx_optical_w * level.max(0.0))
}

/// Co-channel interference noise at the slot detector, as an equivalent
/// photocurrent σ (A).
///
/// Each interfering luminaire `i` is an independent on-off source seen
/// through its own Lambertian path: mean received power `P_i · l_i`,
/// per-slot variance `(R·P_i)²·l_i(1−l_i)` for duty (dimming level)
/// `l_i`. The interferers' slot clocks are unsynchronized, so their
/// contribution is well modelled as additional Gaussian noise on the
/// detector input — the standard treatment for unsynchronized co-channel
/// VLC cells.
pub fn interference_sigma_a(
    optics: &CellOptics,
    room: &RoomGeometry,
    interferers: &[(Position, f64)],
    user: &Position,
) -> f64 {
    let responsivity = vlc_channel::photodiode::Photodiode::sfh206k().responsivity_a_per_w;
    let var: f64 = interferers
        .iter()
        .map(|(pos, level)| {
            let l = level.clamp(0.0, 1.0);
            let p_rx = link_geometry(optics, room, pos, user).received_power_w(optics.tx_optical_w);
            let i_peak = responsivity * p_rx;
            i_peak * i_peak * l * (1.0 - l)
        })
        .sum();
    var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn room() -> RoomGeometry {
        RoomGeometry::for_grid(3, 3, 2.5)
    }

    #[test]
    fn grid_is_centred_and_row_major() {
        let r = room();
        let grid = ceiling_grid(&r, 3, 3);
        assert_eq!(grid.len(), 9);
        assert_eq!(
            grid[0].pos,
            Position {
                x_m: 1.25,
                y_m: 1.25
            }
        );
        assert_eq!(
            grid[1].pos,
            Position {
                x_m: 3.75,
                y_m: 1.25
            }
        );
        assert_eq!(
            grid[3].pos,
            Position {
                x_m: 1.25,
                y_m: 3.75
            }
        );
        assert_eq!(
            grid[8].pos,
            Position {
                x_m: 6.25,
                y_m: 6.25
            }
        );
        for (i, l) in grid.iter().enumerate() {
            assert_eq!(l.id, i);
        }
    }

    #[test]
    fn boresight_link_is_clean_cell_corner_degraded() {
        let r = room();
        let optics = CellOptics::office_panel();
        let lum = Position {
            x_m: 1.25,
            y_m: 1.25,
        };
        let under = cell_channel(&optics, &r, &lum, &lum, 8080.0);
        let corner = cell_channel(&optics, &r, &lum, &Position { x_m: 2.5, y_m: 2.5 }, 8080.0);
        let p_under = under.analytic_error_probs().p_off_error;
        let p_corner = corner.analytic_error_probs().p_off_error;
        assert!(p_under < 1e-5, "boresight p1={p_under:.2e}");
        assert!(p_corner > p_under * 10.0, "corner p1={p_corner:.2e}");
        assert!(
            p_corner < 0.5,
            "corner must not be pure noise: {p_corner:.2e}"
        );
    }

    #[test]
    fn rss_ranks_the_nearest_luminaire_first() {
        let r = room();
        let optics = CellOptics::office_panel();
        let grid = ceiling_grid(&r, 3, 3);
        let user = Position { x_m: 1.0, y_m: 1.4 };
        let mut rss: Vec<(usize, f64)> = grid
            .iter()
            .map(|l| (l.id, received_power_w(&optics, &r, &l.pos, &user, 1.0)))
            .collect();
        rss.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        assert_eq!(rss[0].0, 0, "nearest cell must win: {rss:?}");
        assert!(rss[0].1 > rss[4].1 * 2.0);
    }

    #[test]
    fn rss_scales_with_dimming_level() {
        let r = room();
        let optics = CellOptics::office_panel();
        let lum = Position {
            x_m: 1.25,
            y_m: 1.25,
        };
        let full = received_power_w(&optics, &r, &lum, &lum, 1.0);
        let dim = received_power_w(&optics, &r, &lum, &lum, 0.25);
        assert!(full > 0.0);
        assert!((dim / full - 0.25).abs() < 0.02, "dim/full={}", dim / full);
    }

    #[test]
    fn interference_peaks_at_half_duty_and_vanishes_at_rails() {
        let r = room();
        let optics = CellOptics::office_panel();
        let neighbour = Position {
            x_m: 3.75,
            y_m: 1.25,
        };
        let user = Position {
            x_m: 1.25,
            y_m: 1.25,
        };
        let at = |l: f64| interference_sigma_a(&optics, &r, &[(neighbour, l)], &user);
        assert!(
            at(0.5) > at(0.1),
            "σ(0.5)={:.2e} σ(0.1)={:.2e}",
            at(0.5),
            at(0.1)
        );
        assert_eq!(at(0.0), 0.0);
        assert_eq!(at(1.0), 0.0);
    }

    #[test]
    fn interference_is_material_near_cell_edges() {
        // At the boundary between two cells, the neighbour's modulation
        // must be a visible fraction of the serving signal swing —
        // otherwise the multi-cell model degenerates to N independent
        // links.
        let r = room();
        let optics = CellOptics::office_panel();
        let serving = Position {
            x_m: 1.25,
            y_m: 1.25,
        };
        let neighbour = Position {
            x_m: 3.75,
            y_m: 1.25,
        };
        let edge = Position {
            x_m: 2.5,
            y_m: 1.25,
        };
        let sig = received_power_w(&optics, &r, &serving, &edge, 1.0);
        let sigma = interference_sigma_a(&optics, &r, &[(neighbour, 0.5)], &edge);
        let r_a_per_w = 0.62;
        let ratio = sigma / (r_a_per_w * sig);
        assert!(ratio > 0.05, "interference negligible at the edge: {ratio}");
        assert!(ratio < 1.0, "interference cannot dwarf the signal: {ratio}");
    }

    #[test]
    fn clamp_keeps_positions_in_the_room() {
        let r = room();
        let p = r.clamp(Position {
            x_m: -1.0,
            y_m: 99.0,
        });
        assert_eq!(
            p,
            Position {
                x_m: 0.0,
                y_m: r.depth_m
            }
        );
    }
}
