//! The event-driven cell simulation core.
//!
//! [`run_cell`](super::run_cell) executes here: every piece of per-tick
//! work is a typed [`CellEvent`] on a [`desim::Scheduler`] queue, and
//! simulated time advances event-to-event instead of sweeping every
//! component in a lockstep loop. Two properties fall out:
//!
//! * **Idle components cost nothing.** A user in association outage has
//!   no `Grant` event queued at all — its delivery work is cancelled at
//!   handover time and re-scheduled for the tick the outage ends, instead
//!   of being skipped tick after tick.
//! * **Per-user work is local.** The Lambertian path through a 70° FoV
//!   receiver is *exactly* 0 W beyond `drop · tan(FoV)` ≈ 6 m of
//!   horizontal range, so RSS ranking and interference sums visit only
//!   the luminaire window around the user (the engine computes the
//!   index window directly from the regular grid). On a 32×32 grid that
//!   turns O(users × 1024) scans into O(users × ~25) — the unlock for
//!   building-scale batteries.
//!
//! # Determinism
//!
//! The lockstep loop was deterministic because it visited components in
//! a fixed order; an event queue is deterministic only if same-instant
//! delivery order is pinned. Every event therefore carries an explicit
//! ordering key ([`CellEvent::order_key`]): phase first — ambient →
//! sense → walk → TDMA → grant, the exact lockstep sweep order — then
//! entity id within the phase. [`Scheduler::schedule_keyed`] orders
//! same-instant events by that key *regardless of when they were
//! scheduled*, so cancelling and re-scheduling a grant around a handover
//! cannot demote it behind another user's grant and perturb the
//! (order-sensitive) per-cell f64 accumulation. The result is
//! bit-identical to [`run_cell_lockstep`](super::run_cell_lockstep) on
//! every configuration — the `cell_equivalence` suite asserts it — and
//! byte-identical across `SMARTVLC_THREADS` like every other battery.
//!
//! # Adding a new event type
//!
//! See ARCHITECTURE.md ("Event-driven cell core"): add a variant to
//! [`CellEvent`], give it a phase slot in [`CellEvent::order_key`] that
//! states *where in the tick* it fires relative to the existing phases,
//! handle it in `EventEngine::handle`, and seed/re-schedule it like the
//! others. The keyed queue does the rest.

use super::sched::{CellScheduler, LinkEstimate, ScheduleContext, SchedulerSpec, TickPlan};
use super::traffic::{CellTrafficSpec, TrafficState};
use super::{
    cell_channel, finish_report, interference_sigma_a, quantize_lux, rate_for, received_power_w,
    sim_parts, window_gain, CellConfig, CellReport, Position, RunTallies, SimParts,
};
use desim::{EventHandle, Scheduler, SimTime};
use smartvlc_core::adaptation::{perceived, AdaptationStepper};
use smartvlc_obs as obs;
use vlc_channel::detector::SlotDetector;
use vlc_channel::opcache::OperatingPointCache;

/// One typed event on the cell simulation's queue.
///
/// A tick of simulated time is the set of events sharing one timestamp;
/// their delivery order is pinned by [`CellEvent::order_key`], which
/// reproduces the lockstep sweep: the shared ambient advances first,
/// then every luminaire senses (id order), every user walks and runs
/// handover (id order), TDMA membership is recounted, and finally each
/// granted user's delivery fires (id order).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CellEvent {
    /// Advance the shared ambient field and cache this tick's base lux.
    AmbientSample,
    /// Luminaire `lum` senses its local ambient (own noise stream) and
    /// adapts through the perception deadband.
    Sense {
        /// Luminaire (cell) id.
        lum: usize,
    },
    /// User `user` advances its waypoint walk and runs the handover
    /// state machine against the local RSS slate.
    Walk {
        /// User id.
        user: usize,
    },
    /// Recount TDMA membership from the current associations.
    TdmaReschedule,
    /// User `user`'s TDMA grant: deliver this tick's share. Only queued
    /// for ticks the user is *not* in association outage — handover
    /// cancels the pending grant and re-schedules it past the outage.
    Grant {
        /// User id.
        user: usize,
    },
}

/// Phase slots for [`CellEvent::order_key`]: the lockstep sweep order.
const PHASE_AMBIENT: u64 = 0;
const PHASE_SENSE: u64 = 1;
const PHASE_WALK: u64 = 2;
const PHASE_TDMA: u64 = 3;
const PHASE_GRANT: u64 = 4;
/// Entity ids occupy the low bits of the key; 40 bits is room for a
/// trillion luminaires/users per phase.
const PHASE_SHIFT: u32 = 40;

impl CellEvent {
    /// The same-instant ordering key this event is scheduled under:
    /// phase in the high bits, entity id in the low bits. Events at one
    /// timestamp always fire in ascending key order, no matter when (or
    /// how often) they were scheduled or re-scheduled.
    pub fn order_key(&self) -> u64 {
        let (phase, id) = match *self {
            CellEvent::AmbientSample => (PHASE_AMBIENT, 0),
            CellEvent::Sense { lum } => (PHASE_SENSE, lum as u64),
            CellEvent::Walk { user } => (PHASE_WALK, user as u64),
            CellEvent::TdmaReschedule => (PHASE_TDMA, 0),
            CellEvent::Grant { user } => (PHASE_GRANT, user as u64),
        };
        debug_assert!(id < 1 << PHASE_SHIFT);
        (phase << PHASE_SHIFT) | id
    }
}

/// The timestamp of tick `tick` — the same expression the lockstep loop
/// used, so `lux_at` sees identical instants.
fn tick_time(cfg: &CellConfig, tick: u32) -> SimTime {
    SimTime::from_nanos((tick as f64 * cfg.tick_s * 1e9) as u64)
}

struct EventEngine<'a> {
    cfg: &'a CellConfig,
    parts: SimParts,
    tallies: RunTallies,
    opcache: OperatingPointCache,
    /// This tick's shared ambient sample (set by `AmbientSample`, the
    /// first event of every tick).
    base_lux: f64,
    /// The tick currently being delivered; advanced by `AmbientSample`.
    tick: u32,
    next_tick: u32,
    /// Per-user handle of the pending `Grant` event, if one is queued.
    grant: Vec<Option<EventHandle>>,
    /// First tick at which each user's current outage has fully elapsed.
    outage_until: Vec<u32>,
    members: Vec<u32>,
    rss: Vec<f64>,
    /// Scratch: ascending ids of the luminaires inside the window.
    cand: Vec<usize>,
    interferers: Vec<(Position, f64)>,
    /// Horizontal range beyond which received power is exactly 0 W
    /// (FoV cutoff), padded so float rounding can only *include* cells.
    window_r_m: f64,
    /// Grid cell pitch along x/y as `ceiling_grid` computed it.
    dx_m: f64,
    dy_m: f64,
    tslot_s: f64,
    /// The active scheduling policy (`cfg.scheduler`, built per run).
    scheduler: Box<dyn CellScheduler>,
    /// Cached `scheduler.needs_link_estimates()`.
    wants_estimates: bool,
    /// This tick's grants, recomputed at each `TdmaReschedule`.
    plan: TickPlan,
    /// Scratch: per-cell planned rates at the TDMA phase.
    cell_rates: Vec<f64>,
    /// Scratch: per-user serving cell at the TDMA phase.
    serving: Vec<usize>,
    /// Scratch: per-user grant-fires-this-tick flags.
    eligible: Vec<bool>,
    /// Scratch: per-user link estimates (zeroed when not wanted).
    estimates: Vec<LinkEstimate>,
    /// The net-workload observer, when `cfg.traffic` asks for it.
    traffic: Option<TrafficState>,
}

impl<'a> EventEngine<'a> {
    fn new(cfg: &'a CellConfig, parts: SimParts, seed: u64) -> EventEngine<'a> {
        let n_cells = cfg.n_cells();
        let scheduler = cfg.scheduler.build();
        let wants_estimates = scheduler.needs_link_estimates();
        let traffic = match cfg.traffic {
            CellTrafficSpec::Saturated => None,
            CellTrafficSpec::NetMix => Some(TrafficState::new(cfg.n_users, seed)),
        };
        // Beyond drop·tan(FoV) the off-axis angle exceeds the receiver
        // FoV and `path_gain` returns exactly 0.0; the micro-padding
        // absorbs rounding at the boundary (inclusion is always safe —
        // an included far cell just contributes exact zeros).
        let fov = cfg.optics.rx_fov_deg;
        let window_r_m = if fov < 89.0 {
            parts.room.drop_m * fov.to_radians().tan() * (1.0 + 1e-9) + 1e-6
        } else {
            f64::INFINITY
        };
        EventEngine {
            cfg,
            tallies: RunTallies::new(cfg.n_users),
            opcache: OperatingPointCache::new(),
            base_lux: 0.0,
            tick: 0,
            next_tick: 0,
            grant: vec![None; cfg.n_users],
            outage_until: vec![0; cfg.n_users],
            members: vec![0; n_cells],
            rss: vec![0.0; n_cells],
            cand: Vec::with_capacity(n_cells.min(64)),
            interferers: Vec::with_capacity(n_cells.min(64)),
            window_r_m,
            dx_m: parts.room.width_m / cfg.nx as f64,
            dy_m: parts.room.depth_m / cfg.ny as f64,
            tslot_s: vlc_channel::link::ChannelConfig::paper_bench(1.0).tslot_s,
            scheduler,
            wants_estimates,
            plan: TickPlan::new(cfg.n_users),
            cell_rates: vec![0.0; n_cells],
            serving: vec![0; cfg.n_users],
            eligible: vec![false; cfg.n_users],
            estimates: vec![LinkEstimate::default(); cfg.n_users],
            traffic,
            parts,
        }
    }

    /// Ascending ids of every luminaire whose center lies within the
    /// FoV window box around `pos` — a superset of all cells with
    /// nonzero received power, read straight off the regular grid.
    fn fill_window(&mut self, pos: &Position) {
        self.cand.clear();
        let (ix_lo, ix_hi) = axis_range(pos.x_m, self.window_r_m, self.dx_m, self.cfg.nx);
        let (iy_lo, iy_hi) = axis_range(pos.y_m, self.window_r_m, self.dy_m, self.cfg.ny);
        for j in iy_lo..=iy_hi {
            for i in ix_lo..=ix_hi {
                self.cand.push(j * self.cfg.nx + i);
            }
        }
    }

    fn schedule_next(
        &self,
        sched: &mut Scheduler<CellEvent>,
        ev: CellEvent,
    ) -> Option<EventHandle> {
        let next = self.tick + 1;
        if next < self.cfg.ticks {
            Some(sched.schedule_keyed(tick_time(self.cfg, next), ev.order_key(), ev))
        } else {
            None
        }
    }

    fn handle(&mut self, sched: &mut Scheduler<CellEvent>, t: SimTime, ev: CellEvent) {
        match ev {
            CellEvent::AmbientSample => self.on_ambient(sched, t),
            CellEvent::Sense { lum } => self.on_sense(sched, lum),
            CellEvent::Walk { user } => self.on_walk(sched, t, user),
            CellEvent::TdmaReschedule => self.on_tdma(sched),
            CellEvent::Grant { user } => self.on_grant(sched, user),
        }
    }

    fn on_ambient(&mut self, sched: &mut Scheduler<CellEvent>, t: SimTime) {
        self.tick = self.next_tick;
        self.next_tick += 1;
        self.base_lux = self.parts.ambient.lux_at(t);
        self.schedule_next(sched, CellEvent::AmbientSample);
    }

    fn on_sense(&mut self, sched: &mut Scheduler<CellEvent>, lum: usize) {
        let cfg = self.cfg;
        let gain = window_gain(&self.parts.room, &self.parts.grid[lum].pos);
        let st = &mut self.parts.lums[lum];
        let lux = quantize_lux(
            self.base_lux * gain + st.rng.next_gaussian() * cfg.sensor_noise_lux,
            cfg.sensor_res_lux,
        );
        let norm = (lux / cfg.full_scale_lux).clamp(0.0, 1.0);
        let target = self.parts.illum.led_level_for(norm).value();
        if (perceived(target) - perceived(st.led)).abs() >= self.parts.tau_p {
            st.smart_steps += self.parts.stepper.step_count(st.led, target) as u64;
            st.led = target;
            st.rate_bps = rate_for(&self.parts.planner, target);
        }
        st.led_sum += st.led;
        self.schedule_next(sched, CellEvent::Sense { lum });
    }

    fn on_walk(&mut self, sched: &mut Scheduler<CellEvent>, t: SimTime, user: usize) {
        let cfg = self.cfg;
        self.parts.users[user].step(&self.parts.room, &cfg.mobility, cfg.tick_s);
        let pos = self.parts.users[user].pos;
        let serving = self.parts.assocs[user].serving;

        // RSS over the window (plus the serving cell, wherever it is):
        // everything outside is exactly 0 W, so the subset ranking is
        // bit-identical to the lockstep full scan.
        self.fill_window(&pos);
        if let Err(at) = self.cand.binary_search(&serving) {
            self.cand.insert(at, serving);
        }
        for &i in &self.cand {
            self.rss[i] = received_power_w(
                &cfg.optics,
                &self.parts.room,
                &self.parts.grid[i].pos,
                &pos,
                self.parts.lums[i].led,
            );
        }

        if let Some(ev) = self.parts.assocs[user].step_subset(&self.rss, &self.cand, &cfg.policy) {
            self.tallies.handovers += 1;
            self.tallies.user_handovers[user] += 1;
            self.tallies.latency_ticks_sum += ev.latency_ticks as u64;
            obs::counter_add(obs::key!("sim.cell.handovers"), 1);
            obs::observe(
                obs::key!("sim.cell.handover_latency_ms"),
                (ev.latency_ticks as f64 * cfg.tick_s * 1e3) as u64,
            );
            obs::event(t, obs::key!("sim.cell.handover"), user as u64);

            let delay = cfg.policy.assoc_delay_ticks;
            if delay > 0 {
                // Account the whole outage window now (the lockstep loop
                // counted it tick by tick; overlapping handovers extend,
                // never double-count) and move the user's grant past it.
                let until_new = self.tick + delay;
                let lo = self.outage_until[user].max(self.tick);
                let hi = until_new.min(cfg.ticks);
                let add = hi.saturating_sub(lo) as u64;
                self.tallies.user_outage[user] += add;
                if add > 0 {
                    obs::counter_add(obs::key!("sim.cell.outage_ticks"), add);
                }
                self.outage_until[user] = until_new;
                if let Some(h) = self.grant[user].take() {
                    sched.cancel(h);
                }
                if until_new < cfg.ticks {
                    let ev = CellEvent::Grant { user };
                    self.grant[user] =
                        Some(sched.schedule_keyed(tick_time(cfg, until_new), ev.order_key(), ev));
                }
            }
        }
        self.schedule_next(sched, CellEvent::Walk { user });
    }

    fn on_tdma(&mut self, sched: &mut Scheduler<CellEvent>) {
        self.members.iter_mut().for_each(|m| *m = 0);
        for a in &self.parts.assocs {
            self.members[a.serving] += 1;
        }
        for (st, &m) in self.parts.lums.iter_mut().zip(&self.members) {
            st.users_sum += m as f64;
        }

        // Grant recomputation: snapshot this tick's rates, serving cells
        // and eligibility (all settled — senses and walks fired in
        // earlier phases), compute link estimates if the policy wants
        // them, and let it fill the plan the grant events execute.
        for (r, st) in self.cell_rates.iter_mut().zip(&self.parts.lums) {
            *r = st.rate_bps;
        }
        for u in 0..self.cfg.n_users {
            self.serving[u] = self.parts.assocs[u].serving;
            // Eligible ⇔ a Grant event fires this tick: handover cancels
            // the grant and pushes `outage_until` past the outage in the
            // same motion, so the two are always in step. (The converse
            // doesn't hold — during an outage the re-scheduled grant's
            // handle is already live for a future tick.)
            self.eligible[u] = self.outage_until[u] <= self.tick;
            debug_assert!(!self.eligible[u] || self.grant[u].is_some());
        }
        if self.wants_estimates {
            for u in 0..self.cfg.n_users {
                self.estimates[u] = if self.eligible[u] {
                    self.link_estimate(u)
                } else {
                    LinkEstimate::default()
                };
            }
        }
        self.plan.reset(self.cfg.n_users);
        let ctx = ScheduleContext {
            tick: self.tick,
            members: &self.members,
            rate_bps: &self.cell_rates,
            serving: &self.serving,
            eligible: &self.eligible,
            estimates: if self.wants_estimates {
                &self.estimates
            } else {
                &[]
            },
        };
        self.scheduler.reschedule(&ctx, &mut self.plan);
        self.schedule_next(sched, CellEvent::TdmaReschedule);
    }

    /// Analytic link estimate for one eligible user at the TDMA phase:
    /// the same operating-point/interference math the grant path runs,
    /// summarized into what a policy can rank on. Costs one opcache
    /// query per call (the grant's own query then hits the cache), which
    /// is why policies opt in via `needs_link_estimates`.
    fn link_estimate(&mut self, user: usize) -> LinkEstimate {
        let cfg = self.cfg;
        let serving = self.parts.assocs[user].serving;
        let rate = self.parts.lums[serving].rate_bps;
        if rate <= 0.0 {
            return LinkEstimate::default();
        }
        let pos = self.parts.users[user].pos;
        let lux_here = quantize_lux(
            (self.base_lux * window_gain(&self.parts.room, &pos)).max(0.0),
            cfg.sensor_res_lux,
        );
        let ch = cell_channel(
            &cfg.optics,
            &self.parts.room,
            &self.parts.grid[serving].pos,
            &pos,
            lux_here,
        );
        let det = self.opcache.query(&ch, 1.0, false).detector;
        self.fill_window(&pos);
        // Per-interferer contributions (ascending cell id, strict `>`:
        // dominant ties break to the lowest id).
        let mut var = 0.0;
        let mut dominant: Option<(usize, f64)> = None;
        for &i in &self.cand {
            if i == serving {
                continue;
            }
            let one = [(self.parts.grid[i].pos, self.parts.lums[i].led)];
            let sig = interference_sigma_a(&cfg.optics, &self.parts.room, &one, &pos);
            var += sig * sig;
            if sig > 0.0 && dominant.is_none_or(|(_, s)| sig > s) {
                dominant = Some((i, sig));
            }
        }
        let sigma_cci = var.sqrt();
        let noisy =
            SlotDetector::from_levels(det.mu_on_a, det.mu_off_a, det.sigma_a.hypot(sigma_cci));
        let probs = noisy.error_probs();
        let p_slot = 0.5 * (probs.p_off_error + probs.p_on_error);
        let slots_per_frame = (cfg.frame_bits / rate / self.tslot_s).max(1.0);
        let p_frame_ok = (1.0 - p_slot).powf(slots_per_frame);
        let swing = 0.5 * (det.mu_on_a - det.mu_off_a);
        let sinr = swing * swing
            / (det.sigma_a * det.sigma_a + sigma_cci * sigma_cci).max(f64::MIN_POSITIVE);
        LinkEstimate {
            rate_bps: rate * p_frame_ok,
            sinr_db: 10.0 * sinr.max(f64::MIN_POSITIVE).log10(),
            interference_limited: sigma_cci > det.sigma_a,
            dominant_cell: dominant.map(|(i, _)| i),
        }
    }

    fn on_grant(&mut self, sched: &mut Scheduler<CellEvent>, user: usize) {
        let cfg = self.cfg;
        self.grant[user] = None;
        self.tallies.user_grants[user] += 1;
        let serving = self.parts.assocs[user].serving;
        let rate = self.parts.lums[serving].rate_bps;
        let granted_bps = self.plan.grant_bps(user);
        let coord = self.plan.coord(user);
        let mut achieved_bps = 0.0;
        let mut bits = 0.0;
        if granted_bps > 0.0 {
            debug_assert!(rate > 0.0, "a grant implies a live serving cell");
            self.tallies.served_ticks += 1;
            let pos = self.parts.users[user].pos;
            let lux_here = quantize_lux(
                (self.base_lux * window_gain(&self.parts.room, &pos)).max(0.0),
                cfg.sensor_res_lux,
            );
            let ch = cell_channel(
                &cfg.optics,
                &self.parts.room,
                &self.parts.grid[serving].pos,
                &pos,
                lux_here,
            );
            let det = self.opcache.query(&ch, 1.0, false).detector;
            // Co-channel luminaires within the window, id order, serving
            // (and a coordinating donor) excluded — cells beyond the
            // window contribute exact-zero variance terms, so the pruned
            // sum is bit-identical to the full one.
            self.fill_window(&pos);
            let donor = coord.map(|c| c.donor);
            self.interferers.clear();
            self.interferers.extend(
                self.cand
                    .iter()
                    .filter(|&&i| i != serving && Some(i) != donor)
                    .map(|&i| (self.parts.grid[i].pos, self.parts.lums[i].led)),
            );
            let sigma_cci =
                interference_sigma_a(&cfg.optics, &self.parts.room, &self.interferers, &pos);
            if sigma_cci > det.sigma_a {
                self.tallies.interference_limited += 1;
            }
            let mut mu_on = det.mu_on_a;
            if let Some(c) = coord {
                self.tallies.coord_grants += 1;
                if c.joint_serve {
                    // The donor transmits the user's symbols in phase:
                    // its swing raises the ON level instead of raising
                    // the interference floor.
                    let ch_d = cell_channel(
                        &cfg.optics,
                        &self.parts.room,
                        &self.parts.grid[c.donor].pos,
                        &pos,
                        lux_here,
                    );
                    let det_d = self.opcache.query(&ch_d, 1.0, false).detector;
                    mu_on += det_d.mu_on_a - det_d.mu_off_a;
                }
            }
            let det = SlotDetector::from_levels(mu_on, det.mu_off_a, det.sigma_a.hypot(sigma_cci));
            let probs = det.error_probs();
            let p_slot = 0.5 * (probs.p_off_error + probs.p_on_error);
            let slots_per_frame = (cfg.frame_bits / rate / self.tslot_s).max(1.0);
            let p_frame_ok = (1.0 - p_slot).powf(slots_per_frame);
            achieved_bps = granted_bps * p_frame_ok;
            bits = granted_bps * p_frame_ok * cfg.tick_s;
            self.tallies.user_bits[user] += bits;
            self.parts.lums[serving].delivered_bits += bits;
        }
        self.scheduler.on_delivered(user, achieved_bps);
        if let Some(ts) = self.traffic.as_mut() {
            let end_s = (self.tick + 1) as f64 * cfg.tick_s;
            ts.on_grant(user, tick_time(cfg, self.tick), end_s, bits);
        }
        self.grant[user] = self.schedule_next(sched, CellEvent::Grant { user });
    }
}

/// Index window along one grid axis: every cell whose center coordinate
/// `(i + 0.5) · pitch` lies within `r` of `center`, clamped to the grid.
fn axis_range(center: f64, r: f64, pitch: f64, n: usize) -> (usize, usize) {
    let lo = ((center - r) / pitch - 0.5).ceil().max(0.0);
    let hi = ((center + r) / pitch - 0.5).floor().min((n - 1) as f64);
    if hi < lo {
        // Can only happen for degenerate optics (FoV window narrower
        // than half a pitch); an empty window means every cell is at
        // exactly 0 W, which the handover machine treats as "stay put".
        (0, 0)
    } else {
        (lo as usize, hi as usize)
    }
}

/// The event-core implementation behind [`super::run_cell`].
pub(crate) fn run_cell_event(cfg: &CellConfig, seed: u64) -> CellReport {
    assert!(cfg.n_cells() >= 1, "need at least one luminaire");
    assert!(cfg.n_users >= 1, "need at least one user");
    assert!(cfg.tick_s > 0.0 && cfg.ticks > 0, "need a positive horizon");
    obs::counter_add(obs::key!("sim.cell.runs"), 1);

    let parts = sim_parts(cfg, seed);
    let mut eng = EventEngine::new(cfg, parts, seed);
    let mut sched: Scheduler<CellEvent> = Scheduler::new();

    // Seed tick 0. Order here is irrelevant — the keys decide — but
    // id-order seeding keeps handles aligned for the grant table.
    let t0 = tick_time(cfg, 0);
    let seed_ev = |sched: &mut Scheduler<CellEvent>, ev: CellEvent| {
        sched.schedule_keyed(t0, ev.order_key(), ev)
    };
    seed_ev(&mut sched, CellEvent::AmbientSample);
    for lum in 0..cfg.n_cells() {
        seed_ev(&mut sched, CellEvent::Sense { lum });
    }
    for user in 0..cfg.n_users {
        seed_ev(&mut sched, CellEvent::Walk { user });
    }
    seed_ev(&mut sched, CellEvent::TdmaReschedule);
    for user in 0..cfg.n_users {
        let ev = CellEvent::Grant { user };
        eng.grant[user] = Some(seed_ev(&mut sched, ev));
    }

    let events = sched.run_with(None, |s, t, ev| eng.handle(s, t, ev));
    let queue_peak = sched.high_water() as u64;
    obs::counter_add(obs::key!("sim.cell.events"), events);
    obs::gauge_set(obs::key!("sim.cell.queue_peak"), queue_peak as f64);

    let sched_stats = eng.scheduler.stats();
    let traffic_report = eng.traffic.as_ref().map(|t| t.report());
    let EventEngine {
        parts,
        mut tallies,
        opcache,
        tslot_s,
        ..
    } = eng;
    tallies.coord_blocked = sched_stats.coord_blocked;
    // New policies get their own counter namespace; the legacy
    // equal-share path emits exactly the legacy telemetry so existing
    // artifacts stay byte-identical.
    if !matches!(cfg.scheduler, SchedulerSpec::EqualShare) {
        obs::counter_add(
            match cfg.scheduler {
                SchedulerSpec::EqualShare => unreachable!(),
                SchedulerSpec::ProportionalFair { .. } => obs::key!("sim.cell.sched.pf_runs"),
                SchedulerSpec::CoordinatedEdge { .. } => obs::key!("sim.cell.sched.coord_runs"),
            },
            1,
        );
        obs::counter_add(obs::key!("sim.cell.sched.grants"), tallies.served_ticks);
        if tallies.coord_grants > 0 {
            obs::counter_add(
                obs::key!("sim.cell.sched.coord_grants"),
                tallies.coord_grants,
            );
        }
        if tallies.coord_blocked > 0 {
            obs::counter_add(
                obs::key!("sim.cell.sched.coord_blocked"),
                tallies.coord_blocked,
            );
        }
    }
    finish_report(
        cfg,
        &parts,
        &tallies,
        &opcache,
        tslot_s,
        events,
        queue_peak,
        traffic_report,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_keys_reproduce_the_lockstep_sweep() {
        let tick: Vec<u64> = [
            CellEvent::AmbientSample,
            CellEvent::Sense { lum: 0 },
            CellEvent::Sense { lum: 5 },
            CellEvent::Walk { user: 0 },
            CellEvent::Walk { user: 9 },
            CellEvent::TdmaReschedule,
            CellEvent::Grant { user: 0 },
            CellEvent::Grant { user: 9 },
        ]
        .iter()
        .map(CellEvent::order_key)
        .collect();
        let mut sorted = tick.clone();
        sorted.sort_unstable();
        assert_eq!(tick, sorted, "phase/id order must be ascending");
        assert!(
            tick.windows(2).all(|w| w[0] < w[1]),
            "keys must be distinct"
        );
    }

    #[test]
    fn axis_range_covers_the_window_and_clamps_to_the_grid() {
        // 8 cells at 2.5 m pitch, centers at 1.25, 3.75, ..., 18.75.
        let (lo, hi) = axis_range(10.0, 6.05, 2.5, 8);
        assert_eq!((lo, hi), (2, 5)); // centers 6.25..=13.75 within ±6.05
        let (lo, hi) = axis_range(0.0, 6.05, 2.5, 8);
        assert_eq!((lo, hi), (0, 1));
        let (lo, hi) = axis_range(20.0, 6.05, 2.5, 8);
        assert_eq!((lo, hi), (6, 7));
        // A window wider than the room covers everything.
        let (lo, hi) = axis_range(5.0, f64::INFINITY, 2.5, 8);
        assert_eq!((lo, hi), (0, 7));
    }

    #[test]
    fn event_count_and_queue_peak_are_deterministic_and_plausible() {
        let cfg = CellConfig::standard(2, 2, 3);
        let a = run_cell_event(&cfg, 99);
        let b = run_cell_event(&cfg, 99);
        assert_eq!(a.events, b.events);
        assert_eq!(a.queue_peak, b.queue_peak);
        // Per tick: 1 ambient + 4 senses + 3 walks + 1 TDMA + ≤3 grants
        // (grants go missing only during association outages).
        let ticks = cfg.ticks as u64;
        assert!(a.events <= ticks * 12, "{}", a.events);
        assert!(a.events >= ticks * 9, "{}", a.events);
        assert!(a.queue_peak >= 12, "{}", a.queue_peak);
    }
}
