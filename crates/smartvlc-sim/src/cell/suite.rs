//! The cell scenario battery behind `results/BENCH_cell.json`.
//!
//! A grid-size × user-count sweep over [`run_cell`],
//! fanned out on the deterministic runner: the aggregate-goodput-vs-users
//! and handover-latency curves the bench bin writes, plus the JSON
//! encoder both the bin and the determinism tests share (so "the file is
//! byte-identical at any `SMARTVLC_THREADS`" is asserted on exactly the
//! bytes that get written).
//!
//! Two batteries live here:
//!
//! * the **standard battery** ([`cell_scenarios`]): small grids, several
//!   replicates, every column of the report — the regression surface;
//! * the **scale battery** ([`cell_scale_scenarios`]): 8×8×100 up to
//!   32×32×1000, one replicate each, reported as the wall-clock- and
//!   events/sec-vs-grid-size scaling curve the event-driven core exists
//!   for. Only the event core can run these in reasonable time; the bench
//!   bin times them and splices the (nondeterministic) wall-clock curve
//!   into the artifact after the byte-equality gate.

use super::{run_cell, CellConfig, CellReport, CellTrafficReport, CellTrafficSpec, SchedulerSpec};
use crate::runner::{par_sweep, task_seed, TaskId};
use crate::scenario::CellScenarioBuilder;

/// One point of the cell sweep: a stable name (the JSON key) plus the
/// full run configuration, as assembled by
/// [`crate::scenario::CellScenarioBuilder`].
#[derive(Clone, Debug)]
pub struct CellScenario {
    /// Stable identifier (also the JSON key).
    pub name: String,
    /// The complete run configuration.
    pub cfg: CellConfig,
}

impl CellScenario {
    /// The run configuration for this scenario.
    pub fn config(&self) -> CellConfig {
        self.cfg
    }
}

/// Sensor resolution for the quantized op-cache leg of the battery, lux.
/// Commodity ambient-light sensors report in steps of tens of lux; at
/// 50 lux the blind ramp revisits operating points instead of minting a
/// fresh one every tick, so the per-run op-point cache finally earns hits
/// (reported as `opcache_hit_rate_quantized`).
pub const QUANTIZED_SENSOR_RES_LUX: f64 = 50.0;

/// The standard battery: 2×2, 3×3 and 4×4 grids, each serving 2, 6 and
/// 12 users — ≥ 3 grid sizes × ≥ 3 user counts, covering both the
/// sparse regime (cells idle) and the contended one (TDMA shares thin,
/// handovers frequent).
pub fn cell_scenarios() -> Vec<CellScenario> {
    let mut out = Vec::new();
    for &(nx, ny) in &[(2usize, 2usize), (3, 3), (4, 4)] {
        for &n_users in &[2usize, 6, 12] {
            out.push(
                CellScenarioBuilder::new()
                    .grid(nx, ny)
                    .users(n_users)
                    .build()
                    .expect("standard battery scenarios are valid"),
            );
        }
    }
    out
}

/// The scale battery: building-floor grids under heavy mobile load, one
/// simulated minute each. The event-driven core's per-user FoV window
/// makes the cost grow with users × window, not users × cells — which is
/// what lets the 32×32 × 1000-user point complete at all.
pub fn cell_scale_scenarios() -> Vec<CellScenario> {
    [(8usize, 100usize), (16, 400), (32, 1000)]
        .iter()
        .map(|&(n, users)| {
            CellScenarioBuilder::new()
                .grid(n, n)
                .users(users)
                .name(format!("scale_{n}x{n}_users{users}"))
                .build()
                .expect("scale battery scenarios are valid")
        })
        .collect()
}

/// One point of the scaling curve: the deterministic outcome of a scale
/// scenario (everything here participates in the byte-equality gate; the
/// wall-clock side lives in the bench bin's spliced `scaling_wall` line).
#[derive(Clone, Debug)]
pub struct ScalePoint {
    /// Scenario name (JSON key).
    pub name: String,
    /// Grid extent along x.
    pub nx: usize,
    /// Grid extent along y.
    pub ny: usize,
    /// Mobile users.
    pub users: usize,
    /// Simulated ticks.
    pub ticks: u32,
    /// Events delivered off the scheduler queue.
    pub events: u64,
    /// Scheduler queue-depth high-water mark.
    pub queue_peak: u64,
    /// Aggregate goodput, bit/s.
    pub aggregate_goodput_bps: f64,
    /// Completed handovers.
    pub handovers: u64,
    /// Fraction of user-ticks in association outage.
    pub outage_fraction: f64,
}

impl ScalePoint {
    /// Fold one run's report into a scaling-curve point.
    pub fn from_report(sc: &CellScenario, r: &CellReport) -> ScalePoint {
        ScalePoint {
            name: sc.name.clone(),
            nx: sc.cfg.nx,
            ny: sc.cfg.ny,
            users: sc.cfg.n_users,
            ticks: sc.cfg.ticks,
            events: r.events,
            queue_peak: r.queue_peak,
            aggregate_goodput_bps: r.aggregate_goodput_bps,
            handovers: r.handovers,
            outage_fraction: r.outage_fraction,
        }
    }
}

/// Run the scale battery (one replicate per scenario) on the
/// deterministic work pool. The per-scenario seeds are
/// `task_seed(base_seed, index)`, so a caller timing individual scenarios
/// serially can reproduce the exact same runs.
pub fn run_cell_scale(base_seed: u64) -> Vec<ScalePoint> {
    let scenarios = cell_scale_scenarios();
    let grouped = par_sweep(&scenarios, 1, base_seed, |sc: &CellScenario, id: TaskId| {
        run_cell(&sc.config(), id.seed)
    });
    scenarios
        .iter()
        .zip(&grouped)
        .map(|(sc, reps)| ScalePoint::from_report(sc, &reps[0]))
        .collect()
}

/// Deterministic JSON for the scaling curve: a top-level-embeddable array
/// (2-space base indent), one line per point, stable key order. The bench
/// bin byte-compares this string between `SMARTVLC_THREADS=1` and `=8`
/// before splicing it into `BENCH_cell.json`.
pub fn cell_scale_json(points: &[ScalePoint]) -> String {
    let mut s = String::from("[\n");
    for (i, p) in points.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"grid\": [{}, {}], \"users\": {}, \"ticks\": {}, \
             \"cells\": {}, \"events\": {}, \"queue_peak\": {}, \
             \"aggregate_goodput_bps\": {}, \"handovers\": {}, \"outage_fraction\": {}}}{}\n",
            p.name,
            p.nx,
            p.ny,
            p.users,
            p.ticks,
            p.nx * p.ny,
            p.events,
            p.queue_peak,
            f6(p.aggregate_goodput_bps),
            p.handovers,
            f6(p.outage_fraction),
            if i + 1 < points.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]");
    s
}

/// Replicate-aggregated outcome of one scenario.
#[derive(Clone, Debug)]
pub struct CellSuiteSummary {
    /// The scenario.
    pub scenario: CellScenario,
    /// Mean aggregate goodput over replicates, bit/s.
    pub mean_aggregate_goodput_bps: f64,
    /// Worst replicate's aggregate goodput, bit/s.
    pub min_aggregate_goodput_bps: f64,
    /// Mean per-user goodput over replicates, bit/s.
    pub mean_per_user_goodput_bps: f64,
    /// Total completed handovers across replicates.
    pub handovers: u64,
    /// Handovers per user per simulated minute.
    pub handover_rate_per_user_min: f64,
    /// Mean handover latency, s (`None` if nothing handed over).
    pub mean_handover_latency_s: Option<f64>,
    /// Mean fraction of user-ticks in association outage.
    pub outage_fraction: f64,
    /// Mean fraction of served ticks that were interference-limited.
    pub interference_limited_fraction: f64,
    /// Operating-point cache hits summed across replicates (deterministic:
    /// per-run caches, replicate-order sum).
    pub opcache_hits: u64,
    /// Operating-point cache misses summed across replicates.
    pub opcache_misses: u64,
    /// Op-cache hits of the quantized-sensing leg (replicate-0 seed rerun
    /// with [`QUANTIZED_SENSOR_RES_LUX`]).
    pub opcache_hits_quantized: u64,
    /// Op-cache misses of the quantized-sensing leg.
    pub opcache_misses_quantized: u64,
    /// Scheduler events delivered, summed across replicates.
    pub events: u64,
    /// Largest scheduler queue-depth high-water mark across replicates.
    pub queue_peak: u64,
    /// Analytic-RX slot-equivalents summed across replicates (the ns/slot
    /// denominator the bench bin uses).
    pub slots_equivalent: f64,
    /// Raw per-replicate reports (replicate order).
    pub replicates: Vec<CellReport>,
}

impl CellSuiteSummary {
    /// Hit rate of the quantized-sensing leg (0 when it never queried).
    pub fn opcache_hit_rate_quantized(&self) -> f64 {
        let q = self.opcache_hits_quantized + self.opcache_misses_quantized;
        if q > 0 {
            self.opcache_hits_quantized as f64 / q as f64
        } else {
            0.0
        }
    }
}

/// Run the whole battery: `replicates` seeds per scenario on the
/// deterministic work pool, plus one quantized-sensing rerun of each
/// scenario's replicate-0 seed (the op-cache bugfix leg — quantization
/// defaults off precisely so the main leg's artifacts stay byte-stable).
/// Byte-identical output at any `SMARTVLC_THREADS`.
pub fn run_cell_suite(replicates: usize, base_seed: u64) -> Vec<CellSuiteSummary> {
    let scenarios = cell_scenarios();
    let grouped = par_sweep(
        &scenarios,
        replicates,
        base_seed,
        |sc: &CellScenario, id: TaskId| run_cell(&sc.config(), id.seed),
    );
    // The quantized leg replays each scenario's replicate-0 seed with the
    // sensor resolution on, so its hit rate is directly comparable.
    let quantized = par_sweep(&scenarios, 1, base_seed, |sc: &CellScenario, id: TaskId| {
        let mut cfg = sc.config();
        cfg.sensor_res_lux = QUANTIZED_SENSOR_RES_LUX;
        run_cell(&cfg, task_seed(base_seed, (id.point * replicates) as u64))
    });
    scenarios
        .into_iter()
        .zip(grouped)
        .zip(quantized)
        .map(|((scenario, reps), q)| summarize(scenario, reps, &q[0]))
        .collect()
}

fn summarize(
    scenario: CellScenario,
    reps: Vec<CellReport>,
    quantized: &CellReport,
) -> CellSuiteSummary {
    let n = reps.len().max(1) as f64;
    let mean_aggregate = reps.iter().map(|r| r.aggregate_goodput_bps).sum::<f64>() / n;
    let min_aggregate = reps
        .iter()
        .map(|r| r.aggregate_goodput_bps)
        .fold(f64::INFINITY, f64::min);
    let handovers: u64 = reps.iter().map(|r| r.handovers).sum();
    let sim_minutes: f64 = reps.iter().map(|r| r.duration_s).sum::<f64>() / 60.0;
    let latencies: Vec<f64> = reps
        .iter()
        .filter_map(|r| r.mean_handover_latency_s.map(|l| (l, r.handovers)))
        .map(|(l, h)| l * h as f64)
        .collect();
    CellSuiteSummary {
        mean_aggregate_goodput_bps: mean_aggregate,
        min_aggregate_goodput_bps: if min_aggregate.is_finite() {
            min_aggregate
        } else {
            0.0
        },
        mean_per_user_goodput_bps: mean_aggregate / scenario.cfg.n_users.max(1) as f64,
        handovers,
        handover_rate_per_user_min: if sim_minutes > 0.0 {
            handovers as f64 / (scenario.cfg.n_users as f64 * sim_minutes)
        } else {
            0.0
        },
        mean_handover_latency_s: if handovers > 0 {
            Some(latencies.iter().sum::<f64>() / handovers as f64)
        } else {
            None
        },
        outage_fraction: reps.iter().map(|r| r.outage_fraction).sum::<f64>() / n,
        interference_limited_fraction: reps
            .iter()
            .map(|r| r.interference_limited_fraction)
            .sum::<f64>()
            / n,
        opcache_hits: reps.iter().map(|r| r.opcache_hits).sum(),
        opcache_misses: reps.iter().map(|r| r.opcache_misses).sum(),
        opcache_hits_quantized: quantized.opcache_hits,
        opcache_misses_quantized: quantized.opcache_misses,
        events: reps.iter().map(|r| r.events).sum(),
        queue_peak: reps.iter().map(|r| r.queue_peak).max().unwrap_or(0),
        slots_equivalent: reps.iter().map(|r| r.slots_equivalent).sum(),
        replicates: reps,
        scenario,
    }
}

pub(crate) fn f6(v: f64) -> String {
    format!("{v:.6}")
}

/// One point of the **policy battery**: a reference grid run under one
/// scheduling policy with the smartvlc-net workload mix replayed
/// ([`CellTrafficSpec::NetMix`]).
#[derive(Clone, Debug)]
pub struct PolicyScenario {
    /// Stable identifier (also the JSON key):
    /// `policy_{nx}x{ny}_users{n}_{policy}`.
    pub name: String,
    /// Index of the grid this point belongs to — policies sharing a grid
    /// index run on the **same seed**, so their columns compare the
    /// policies and nothing else.
    pub grid_index: usize,
    /// The complete run configuration (scheduler + traffic included).
    pub cfg: CellConfig,
}

/// The policy battery: the reference 4×4×12 grid and the 8×8×100
/// building floor, each under every scheduling policy, with the net
/// workload mix replayed for per-flow FCTs.
pub fn cell_policy_scenarios() -> Vec<PolicyScenario> {
    let mut out = Vec::new();
    for (grid_index, &(n, users)) in [(4usize, 12usize), (8, 100)].iter().enumerate() {
        for policy in [
            SchedulerSpec::EqualShare,
            SchedulerSpec::proportional_fair(),
            SchedulerSpec::coordinated_edge(),
        ] {
            let name = format!("policy_{n}x{n}_users{users}_{}", policy.name());
            let sc = CellScenarioBuilder::new()
                .grid(n, n)
                .users(users)
                .scheduler(policy)
                .traffic(CellTrafficSpec::NetMix)
                .name(name.clone())
                .build()
                .expect("policy battery scenarios are valid");
            out.push(PolicyScenario {
                name,
                grid_index,
                cfg: sc.cfg,
            });
        }
    }
    out
}

/// One row of the policy comparison: everything the per-policy columns of
/// `BENCH_cell.json` report. Fully deterministic — the whole struct
/// participates in the byte-equality gate.
#[derive(Clone, Debug)]
pub struct PolicyPoint {
    /// Scenario name (JSON key).
    pub name: String,
    /// Policy name (`equal_share` / `proportional_fair` /
    /// `coordinated_edge`).
    pub policy: &'static str,
    /// Grid extent along x.
    pub nx: usize,
    /// Grid extent along y.
    pub ny: usize,
    /// Mobile users.
    pub users: usize,
    /// Aggregate goodput, bit/s.
    pub aggregate_goodput_bps: f64,
    /// Jain fairness index of the per-user goodputs.
    pub jain_fairness: f64,
    /// 5th-percentile per-user goodput (cell-edge experience), bit/s.
    pub edge_p5_goodput_bps: f64,
    /// Completed handovers.
    pub handovers: u64,
    /// Fraction of user-ticks in association outage.
    pub outage_fraction: f64,
    /// Coordination grants applied at delivery time.
    pub coord_grants: u64,
    /// Coordination requests the donor ledger rejected.
    pub coord_blocked: u64,
    /// Flow-level outcome of the replayed net workload mix.
    pub traffic: Option<CellTrafficReport>,
}

impl PolicyPoint {
    /// Fold one run's report into a policy-comparison row.
    pub fn from_report(sc: &PolicyScenario, r: &CellReport) -> PolicyPoint {
        PolicyPoint {
            name: sc.name.clone(),
            policy: sc.cfg.scheduler.name(),
            nx: sc.cfg.nx,
            ny: sc.cfg.ny,
            users: sc.cfg.n_users,
            aggregate_goodput_bps: r.aggregate_goodput_bps,
            jain_fairness: r.jain_fairness,
            edge_p5_goodput_bps: r.edge_p5_goodput_bps,
            handovers: r.handovers,
            outage_fraction: r.outage_fraction,
            coord_grants: r.coord_grants,
            coord_blocked: r.coord_blocked,
            traffic: r.traffic.clone(),
        }
    }
}

/// Run the policy battery on the deterministic work pool. Every policy on
/// one grid runs the **same seed** (`task_seed(base_seed, grid_index)`),
/// so the per-policy columns differ only by the scheduler. Byte-identical
/// output at any `SMARTVLC_THREADS`.
pub fn run_cell_policies(base_seed: u64) -> Vec<PolicyPoint> {
    let scenarios = cell_policy_scenarios();
    let grouped = par_sweep(
        &scenarios,
        1,
        base_seed,
        |sc: &PolicyScenario, _id: TaskId| {
            run_cell(&sc.cfg, task_seed(base_seed, sc.grid_index as u64))
        },
    );
    scenarios
        .iter()
        .zip(&grouped)
        .map(|(sc, reps)| PolicyPoint::from_report(sc, &reps[0]))
        .collect()
}

/// Deterministic JSON for the policy comparison: a top-level-embeddable
/// array (2-space base indent), one line per point, stable key order. The
/// bench bin byte-compares this string between `SMARTVLC_THREADS=1` and
/// `=8` before splicing it into `BENCH_cell.json`.
pub fn cell_policy_json(points: &[PolicyPoint]) -> String {
    let mut s = String::from("[\n");
    for (i, p) in points.iter().enumerate() {
        let traffic = p.traffic.as_ref().map_or("null".to_string(), |t| {
            format!("{{{}}}", t.to_json_fragment())
        });
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"policy\": \"{}\", \"grid\": [{}, {}], \"users\": {}, \
             \"aggregate_goodput_bps\": {}, \"jain_fairness\": {}, \"edge_p5_goodput_bps\": {}, \
             \"handovers\": {}, \"outage_fraction\": {}, \"coord_grants\": {}, \
             \"coord_blocked\": {}, \"traffic\": {}}}{}\n",
            p.name,
            p.policy,
            p.nx,
            p.ny,
            p.users,
            f6(p.aggregate_goodput_bps),
            f6(p.jain_fairness),
            f6(p.edge_p5_goodput_bps),
            p.handovers,
            f6(p.outage_fraction),
            p.coord_grants,
            p.coord_blocked,
            traffic,
            if i + 1 < points.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]");
    s
}

/// Re-indent every line after the first of an embedded JSON block.
fn indent(json: &str, pad: &str) -> String {
    json.trim_end()
        .lines()
        .enumerate()
        .map(|(i, l)| {
            if i == 0 {
                l.to_string()
            } else {
                format!("{pad}{l}")
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// Deterministic JSON for the suite: stable key order, fixed float
/// formatting, the telemetry snapshot embedded — the exact bytes
/// `cell_suite` writes to `results/BENCH_cell.json`, so byte-equality of
/// this string *is* the determinism contract (asserted at
/// `SMARTVLC_THREADS=1` vs `=8` by both the bench bin and the
/// `determinism` test suite).
pub fn cell_suite_json(
    summaries: &[CellSuiteSummary],
    replicates: usize,
    seed: u64,
    telemetry: &smartvlc_obs::Snapshot,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"suite\": \"cell\",\n");
    s.push_str(&format!("  \"replicates\": {replicates},\n"));
    s.push_str(&format!("  \"base_seed\": {seed},\n"));
    s.push_str("  \"scenarios\": [\n");
    for (i, sm) in summaries.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!("      \"name\": \"{}\",\n", sm.scenario.name));
        s.push_str(&format!(
            "      \"grid\": [{}, {}],\n",
            sm.scenario.cfg.nx, sm.scenario.cfg.ny
        ));
        s.push_str(&format!("      \"users\": {},\n", sm.scenario.cfg.n_users));
        s.push_str(&format!(
            "      \"mean_aggregate_goodput_bps\": {},\n",
            f6(sm.mean_aggregate_goodput_bps)
        ));
        s.push_str(&format!(
            "      \"min_aggregate_goodput_bps\": {},\n",
            f6(sm.min_aggregate_goodput_bps)
        ));
        s.push_str(&format!(
            "      \"mean_per_user_goodput_bps\": {},\n",
            f6(sm.mean_per_user_goodput_bps)
        ));
        s.push_str(&format!("      \"handovers\": {},\n", sm.handovers));
        s.push_str(&format!(
            "      \"handover_rate_per_user_min\": {},\n",
            f6(sm.handover_rate_per_user_min)
        ));
        match sm.mean_handover_latency_s {
            Some(l) => s.push_str(&format!("      \"mean_handover_latency_s\": {},\n", f6(l))),
            None => s.push_str("      \"mean_handover_latency_s\": null,\n"),
        }
        s.push_str(&format!(
            "      \"outage_fraction\": {},\n",
            f6(sm.outage_fraction)
        ));
        s.push_str(&format!(
            "      \"interference_limited_fraction\": {},\n",
            f6(sm.interference_limited_fraction)
        ));
        s.push_str(&format!("      \"opcache_hits\": {},\n", sm.opcache_hits));
        s.push_str(&format!(
            "      \"opcache_misses\": {},\n",
            sm.opcache_misses
        ));
        let queries = sm.opcache_hits + sm.opcache_misses;
        s.push_str(&format!(
            "      \"opcache_hit_rate\": {},\n",
            f6(if queries > 0 {
                sm.opcache_hits as f64 / queries as f64
            } else {
                0.0
            })
        ));
        s.push_str(&format!(
            "      \"opcache_hit_rate_quantized\": {},\n",
            f6(sm.opcache_hit_rate_quantized())
        ));
        s.push_str(&format!("      \"events\": {},\n", sm.events));
        s.push_str(&format!("      \"queue_peak\": {},\n", sm.queue_peak));
        s.push_str(&format!(
            "      \"slots_equivalent\": {},\n",
            f6(sm.slots_equivalent)
        ));
        s.push_str("      \"per_user_goodput_bps\": [");
        let per_user: Vec<String> = sm
            .replicates
            .first()
            .map(|r| r.users.iter().map(|u| f6(u.goodput_bps)).collect())
            .unwrap_or_default();
        s.push_str(&per_user.join(", "));
        s.push_str("]\n");
        s.push_str(if i + 1 < summaries.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    s.push_str("  ],\n");
    // Deterministic by construction: sim-time stamps, submission-order
    // recorder merge — so the telemetry participates in the byte gate.
    s.push_str(&format!(
        "  \"telemetry\": {}\n",
        indent(&telemetry.to_json(), "  ")
    ));
    s.push_str("}\n");
    s
}

/// One full suite run under a fresh recorder: the JSON report (with
/// embedded telemetry) plus the telemetry CSV — the two artifacts the
/// bench bin writes and the determinism tests byte-compare.
pub fn cell_suite_artifacts(
    replicates: usize,
    base_seed: u64,
) -> (String, String, Vec<CellSuiteSummary>) {
    let rec = smartvlc_obs::Recorder::new();
    let summaries = smartvlc_obs::with_recorder(&rec, || run_cell_suite(replicates, base_seed));
    let snap = rec.snapshot();
    (
        cell_suite_json(&summaries, replicates, base_seed, &snap),
        snap.to_csv(),
        summaries,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn battery_covers_three_grids_by_three_user_counts() {
        let scs = cell_scenarios();
        assert_eq!(scs.len(), 9);
        let grids: std::collections::HashSet<(usize, usize)> =
            scs.iter().map(|s| (s.cfg.nx, s.cfg.ny)).collect();
        let users: std::collections::HashSet<usize> = scs.iter().map(|s| s.cfg.n_users).collect();
        assert!(grids.len() >= 3, "{grids:?}");
        assert!(users.len() >= 3, "{users:?}");
        let names: std::collections::HashSet<&str> = scs.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names.len(), scs.len(), "names must be unique");
    }

    #[test]
    fn scale_battery_reaches_32x32_with_1000_users() {
        let scs = cell_scale_scenarios();
        assert!(scs
            .iter()
            .any(|s| s.cfg.nx == 32 && s.cfg.ny == 32 && s.cfg.n_users == 1000));
        assert!(scs
            .windows(2)
            .all(|w| w[0].cfg.n_cells() < w[1].cfg.n_cells()));
    }

    #[test]
    fn scale_json_is_stable_and_embeddable() {
        let p = ScalePoint {
            name: "scale_8x8_users100".into(),
            nx: 8,
            ny: 8,
            users: 100,
            ticks: 600,
            events: 123_456,
            queue_peak: 173,
            aggregate_goodput_bps: 1.5e6,
            handovers: 42,
            outage_fraction: 0.0125,
        };
        let json = cell_scale_json(&[p.clone(), p]);
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with("  ]"), "embeddable at 2-space indent");
        assert!(json.contains("\"cells\": 64"));
        assert!(json.contains("\"events\": 123456"));
        assert_eq!(json.matches("\"name\"").count(), 2);
    }

    #[test]
    fn json_is_stable_and_reports_required_fields() {
        // A tiny battery (first scenario only) through the real encoder.
        let scs = cell_scenarios();
        let snap = smartvlc_obs::Recorder::new().snapshot();
        let reps = vec![run_cell(&scs[0].config(), 123)];
        let mut qcfg = scs[0].config();
        qcfg.sensor_res_lux = QUANTIZED_SENSOR_RES_LUX;
        let q = run_cell(&qcfg, 123);
        let sm = summarize(scs[0].clone(), reps, &q);
        let json = cell_suite_json(&[sm], 1, 123, &snap);
        for field in [
            "\"mean_aggregate_goodput_bps\"",
            "\"handovers\"",
            "\"mean_handover_latency_s\"",
            "\"grid\": [2, 2]",
            "\"users\": 2",
            "\"opcache_hit_rate_quantized\"",
            "\"events\"",
            "\"queue_peak\"",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
        // Stable: same inputs, same bytes.
        let reps2 = vec![run_cell(&scs[0].config(), 123)];
        let q2 = run_cell(&qcfg, 123);
        let sm2 = summarize(scs[0].clone(), reps2, &q2);
        assert_eq!(json, cell_suite_json(&[sm2], 1, 123, &snap));
    }

    #[test]
    fn policy_battery_covers_every_policy_on_every_grid() {
        let scs = cell_policy_scenarios();
        assert_eq!(scs.len(), 6, "2 grids x 3 policies");
        let names: std::collections::HashSet<&str> = scs.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names.len(), scs.len(), "names must be unique");
        for sc in &scs {
            assert_eq!(sc.cfg.traffic, CellTrafficSpec::NetMix);
            assert!(sc.name.contains(sc.cfg.scheduler.name()), "{}", sc.name);
        }
        // Same grid index ⇒ same grid ⇒ same seed at run time.
        for w in scs.chunks(3) {
            assert!(w.iter().all(|s| s.grid_index == w[0].grid_index));
            assert!(w.iter().all(|s| s.cfg.nx == w[0].cfg.nx));
        }
    }

    #[test]
    fn policy_json_is_stable_and_embeddable() {
        let p = PolicyPoint {
            name: "policy_4x4_users12_equal_share".into(),
            policy: "equal_share",
            nx: 4,
            ny: 4,
            users: 12,
            aggregate_goodput_bps: 2.5e6,
            jain_fairness: 0.91,
            edge_p5_goodput_bps: 1.2e5,
            handovers: 31,
            outage_fraction: 0.02,
            coord_grants: 0,
            coord_blocked: 0,
            traffic: None,
        };
        let json = cell_policy_json(&[p.clone(), p]);
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with("  ]"), "embeddable at 2-space indent");
        assert!(json.contains("\"policy\": \"equal_share\""));
        assert!(json.contains("\"jain_fairness\": 0.910000"));
        assert!(json.contains("\"traffic\": null"));
        assert_eq!(json.matches("\"name\"").count(), 2);
    }

    #[test]
    fn quantized_sensing_earns_opcache_hits() {
        // The bugfix this column exists for: with the sensor quantized the
        // blind ramp revisits operating points, so the hit rate climbs off
        // the floor while the unquantized leg stays byte-identical.
        let scs = cell_scenarios();
        let base = run_cell(&scs[0].config(), 123);
        let mut qcfg = scs[0].config();
        qcfg.sensor_res_lux = QUANTIZED_SENSOR_RES_LUX;
        let q = run_cell(&qcfg, 123);
        let rate = |r: &CellReport| {
            let n = r.opcache_hits + r.opcache_misses;
            r.opcache_hits as f64 / n.max(1) as f64
        };
        assert!(
            rate(&q) > rate(&base) + 0.05,
            "quantized {} vs base {}",
            rate(&q),
            rate(&base)
        );
        assert!(rate(&q) > 0.1, "quantized leg still cold: {}", rate(&q));
    }
}
