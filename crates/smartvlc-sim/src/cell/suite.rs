//! The cell scenario battery behind `results/BENCH_cell.json`.
//!
//! A grid-size × user-count sweep over [`run_cell`],
//! fanned out on the deterministic runner: the aggregate-goodput-vs-users
//! and handover-latency curves the bench bin writes, plus the JSON
//! encoder both the bin and the determinism tests share (so "the file is
//! byte-identical at any `SMARTVLC_THREADS`" is asserted on exactly the
//! bytes that get written).

use super::{run_cell, CellConfig, CellReport};
use crate::runner::{par_sweep, TaskId};

/// One point of the cell sweep.
#[derive(Clone, Debug)]
pub struct CellScenario {
    /// Stable identifier (also the JSON key).
    pub name: String,
    /// Grid extent along x.
    pub nx: usize,
    /// Grid extent along y.
    pub ny: usize,
    /// Mobile users in the room.
    pub n_users: usize,
}

impl CellScenario {
    /// The run configuration for this scenario.
    pub fn config(&self) -> CellConfig {
        CellConfig::standard(self.nx, self.ny, self.n_users)
    }
}

/// The standard battery: 2×2, 3×3 and 4×4 grids, each serving 2, 6 and
/// 12 users — ≥ 3 grid sizes × ≥ 3 user counts, covering both the
/// sparse regime (cells idle) and the contended one (TDMA shares thin,
/// handovers frequent).
pub fn cell_scenarios() -> Vec<CellScenario> {
    let mut out = Vec::new();
    for &(nx, ny) in &[(2usize, 2usize), (3, 3), (4, 4)] {
        for &n_users in &[2usize, 6, 12] {
            out.push(CellScenario {
                name: format!("grid{nx}x{ny}_users{n_users}"),
                nx,
                ny,
                n_users,
            });
        }
    }
    out
}

/// Replicate-aggregated outcome of one scenario.
#[derive(Clone, Debug)]
pub struct CellSuiteSummary {
    /// The scenario.
    pub scenario: CellScenario,
    /// Mean aggregate goodput over replicates, bit/s.
    pub mean_aggregate_goodput_bps: f64,
    /// Worst replicate's aggregate goodput, bit/s.
    pub min_aggregate_goodput_bps: f64,
    /// Mean per-user goodput over replicates, bit/s.
    pub mean_per_user_goodput_bps: f64,
    /// Total completed handovers across replicates.
    pub handovers: u64,
    /// Handovers per user per simulated minute.
    pub handover_rate_per_user_min: f64,
    /// Mean handover latency, s (`None` if nothing handed over).
    pub mean_handover_latency_s: Option<f64>,
    /// Mean fraction of user-ticks in association outage.
    pub outage_fraction: f64,
    /// Mean fraction of served ticks that were interference-limited.
    pub interference_limited_fraction: f64,
    /// Operating-point cache hits summed across replicates (deterministic:
    /// per-run caches, replicate-order sum).
    pub opcache_hits: u64,
    /// Operating-point cache misses summed across replicates.
    pub opcache_misses: u64,
    /// Analytic-RX slot-equivalents summed across replicates (the ns/slot
    /// denominator the bench bin uses).
    pub slots_equivalent: f64,
    /// Raw per-replicate reports (replicate order).
    pub replicates: Vec<CellReport>,
}

/// Run the whole battery: `replicates` seeds per scenario on the
/// deterministic work pool. Byte-identical output at any
/// `SMARTVLC_THREADS`.
pub fn run_cell_suite(replicates: usize, base_seed: u64) -> Vec<CellSuiteSummary> {
    let scenarios = cell_scenarios();
    let grouped = par_sweep(
        &scenarios,
        replicates,
        base_seed,
        |sc: &CellScenario, id: TaskId| run_cell(&sc.config(), id.seed),
    );
    scenarios
        .into_iter()
        .zip(grouped)
        .map(|(scenario, reps)| summarize(scenario, reps))
        .collect()
}

fn summarize(scenario: CellScenario, reps: Vec<CellReport>) -> CellSuiteSummary {
    let n = reps.len().max(1) as f64;
    let mean_aggregate = reps.iter().map(|r| r.aggregate_goodput_bps).sum::<f64>() / n;
    let min_aggregate = reps
        .iter()
        .map(|r| r.aggregate_goodput_bps)
        .fold(f64::INFINITY, f64::min);
    let handovers: u64 = reps.iter().map(|r| r.handovers).sum();
    let sim_minutes: f64 = reps.iter().map(|r| r.duration_s).sum::<f64>() / 60.0;
    let latencies: Vec<f64> = reps
        .iter()
        .filter_map(|r| r.mean_handover_latency_s.map(|l| (l, r.handovers)))
        .map(|(l, h)| l * h as f64)
        .collect();
    CellSuiteSummary {
        mean_aggregate_goodput_bps: mean_aggregate,
        min_aggregate_goodput_bps: if min_aggregate.is_finite() {
            min_aggregate
        } else {
            0.0
        },
        mean_per_user_goodput_bps: mean_aggregate / scenario.n_users.max(1) as f64,
        handovers,
        handover_rate_per_user_min: if sim_minutes > 0.0 {
            handovers as f64 / (scenario.n_users as f64 * sim_minutes)
        } else {
            0.0
        },
        mean_handover_latency_s: if handovers > 0 {
            Some(latencies.iter().sum::<f64>() / handovers as f64)
        } else {
            None
        },
        outage_fraction: reps.iter().map(|r| r.outage_fraction).sum::<f64>() / n,
        interference_limited_fraction: reps
            .iter()
            .map(|r| r.interference_limited_fraction)
            .sum::<f64>()
            / n,
        opcache_hits: reps.iter().map(|r| r.opcache_hits).sum(),
        opcache_misses: reps.iter().map(|r| r.opcache_misses).sum(),
        slots_equivalent: reps.iter().map(|r| r.slots_equivalent).sum(),
        replicates: reps,
        scenario,
    }
}

fn f6(v: f64) -> String {
    format!("{v:.6}")
}

/// Re-indent every line after the first of an embedded JSON block.
fn indent(json: &str, pad: &str) -> String {
    json.trim_end()
        .lines()
        .enumerate()
        .map(|(i, l)| {
            if i == 0 {
                l.to_string()
            } else {
                format!("{pad}{l}")
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// Deterministic JSON for the suite: stable key order, fixed float
/// formatting, the telemetry snapshot embedded — the exact bytes
/// `cell_suite` writes to `results/BENCH_cell.json`, so byte-equality of
/// this string *is* the determinism contract (asserted at
/// `SMARTVLC_THREADS=1` vs `=8` by both the bench bin and the
/// `determinism` test suite).
pub fn cell_suite_json(
    summaries: &[CellSuiteSummary],
    replicates: usize,
    seed: u64,
    telemetry: &smartvlc_obs::Snapshot,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"suite\": \"cell\",\n");
    s.push_str(&format!("  \"replicates\": {replicates},\n"));
    s.push_str(&format!("  \"base_seed\": {seed},\n"));
    s.push_str("  \"scenarios\": [\n");
    for (i, sm) in summaries.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!("      \"name\": \"{}\",\n", sm.scenario.name));
        s.push_str(&format!(
            "      \"grid\": [{}, {}],\n",
            sm.scenario.nx, sm.scenario.ny
        ));
        s.push_str(&format!("      \"users\": {},\n", sm.scenario.n_users));
        s.push_str(&format!(
            "      \"mean_aggregate_goodput_bps\": {},\n",
            f6(sm.mean_aggregate_goodput_bps)
        ));
        s.push_str(&format!(
            "      \"min_aggregate_goodput_bps\": {},\n",
            f6(sm.min_aggregate_goodput_bps)
        ));
        s.push_str(&format!(
            "      \"mean_per_user_goodput_bps\": {},\n",
            f6(sm.mean_per_user_goodput_bps)
        ));
        s.push_str(&format!("      \"handovers\": {},\n", sm.handovers));
        s.push_str(&format!(
            "      \"handover_rate_per_user_min\": {},\n",
            f6(sm.handover_rate_per_user_min)
        ));
        match sm.mean_handover_latency_s {
            Some(l) => s.push_str(&format!("      \"mean_handover_latency_s\": {},\n", f6(l))),
            None => s.push_str("      \"mean_handover_latency_s\": null,\n"),
        }
        s.push_str(&format!(
            "      \"outage_fraction\": {},\n",
            f6(sm.outage_fraction)
        ));
        s.push_str(&format!(
            "      \"interference_limited_fraction\": {},\n",
            f6(sm.interference_limited_fraction)
        ));
        s.push_str(&format!("      \"opcache_hits\": {},\n", sm.opcache_hits));
        s.push_str(&format!(
            "      \"opcache_misses\": {},\n",
            sm.opcache_misses
        ));
        let queries = sm.opcache_hits + sm.opcache_misses;
        s.push_str(&format!(
            "      \"opcache_hit_rate\": {},\n",
            f6(if queries > 0 {
                sm.opcache_hits as f64 / queries as f64
            } else {
                0.0
            })
        ));
        s.push_str(&format!(
            "      \"slots_equivalent\": {},\n",
            f6(sm.slots_equivalent)
        ));
        s.push_str("      \"per_user_goodput_bps\": [");
        let per_user: Vec<String> = sm
            .replicates
            .first()
            .map(|r| r.users.iter().map(|u| f6(u.goodput_bps)).collect())
            .unwrap_or_default();
        s.push_str(&per_user.join(", "));
        s.push_str("]\n");
        s.push_str(if i + 1 < summaries.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    s.push_str("  ],\n");
    // Deterministic by construction: sim-time stamps, submission-order
    // recorder merge — so the telemetry participates in the byte gate.
    s.push_str(&format!(
        "  \"telemetry\": {}\n",
        indent(&telemetry.to_json(), "  ")
    ));
    s.push_str("}\n");
    s
}

/// One full suite run under a fresh recorder: the JSON report (with
/// embedded telemetry) plus the telemetry CSV — the two artifacts the
/// bench bin writes and the determinism tests byte-compare.
pub fn cell_suite_artifacts(
    replicates: usize,
    base_seed: u64,
) -> (String, String, Vec<CellSuiteSummary>) {
    let rec = smartvlc_obs::Recorder::new();
    let summaries = smartvlc_obs::with_recorder(&rec, || run_cell_suite(replicates, base_seed));
    let snap = rec.snapshot();
    (
        cell_suite_json(&summaries, replicates, base_seed, &snap),
        snap.to_csv(),
        summaries,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn battery_covers_three_grids_by_three_user_counts() {
        let scs = cell_scenarios();
        assert_eq!(scs.len(), 9);
        let grids: std::collections::HashSet<(usize, usize)> =
            scs.iter().map(|s| (s.nx, s.ny)).collect();
        let users: std::collections::HashSet<usize> = scs.iter().map(|s| s.n_users).collect();
        assert!(grids.len() >= 3, "{grids:?}");
        assert!(users.len() >= 3, "{users:?}");
        let names: std::collections::HashSet<&str> = scs.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names.len(), scs.len(), "names must be unique");
    }

    #[test]
    fn json_is_stable_and_reports_required_fields() {
        // A tiny battery (first scenario only) through the real encoder.
        let scs = cell_scenarios();
        let snap = smartvlc_obs::Recorder::new().snapshot();
        let reps = vec![run_cell(&scs[0].config(), 123)];
        let sm = summarize(scs[0].clone(), reps);
        let json = cell_suite_json(&[sm], 1, 123, &snap);
        for field in [
            "\"mean_aggregate_goodput_bps\"",
            "\"handovers\"",
            "\"mean_handover_latency_s\"",
            "\"grid\": [2, 2]",
            "\"users\": 2",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
        // Stable: same inputs, same bytes.
        let reps2 = vec![run_cell(&scs[0].config(), 123)];
        let sm2 = summarize(scs[0].clone(), reps2);
        assert_eq!(json, cell_suite_json(&[sm2], 1, 123, &snap));
    }
}
