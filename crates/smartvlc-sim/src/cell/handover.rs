//! Signal-strength handover between cells.
//!
//! The standard cellular recipe, sized for room-scale VLC: a user hands
//! over to a neighbour only when the neighbour's received signal beats
//! the serving cell's by a **hysteresis margin** for a full **dwell
//! window** (time-to-trigger), and the switch then costs an
//! **association outage** during which the user receives nothing (the
//! beacon/ACK exchange to join the new cell's TDMA schedule).
//!
//! Hysteresis plus dwell is what prevents ping-pong: a user standing on
//! the midline between two luminaires sees near-equal signal from both,
//! never clears the margin, and stays put (see the tests).

use serde::{Deserialize, Serialize};

/// Handover tuning knobs.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct HandoverPolicy {
    /// A candidate must beat the serving cell by this margin, dB
    /// (received signal power ratio).
    pub hysteresis_db: f64,
    /// The margin must hold for this many consecutive ticks before the
    /// switch is executed (time-to-trigger).
    pub dwell_ticks: u32,
    /// Ticks of dead air while associating with the new cell.
    pub assoc_delay_ticks: u32,
}

impl HandoverPolicy {
    /// Defaults matched to the cell suite's 100 ms tick: 3 dB margin,
    /// 500 ms time-to-trigger, 300 ms association outage.
    pub fn standard() -> HandoverPolicy {
        HandoverPolicy {
            hysteresis_db: 3.0,
            dwell_ticks: 5,
            assoc_delay_ticks: 3,
        }
    }

    /// The linear power ratio a candidate must exceed.
    pub fn hysteresis_ratio(&self) -> f64 {
        10f64.powf(self.hysteresis_db / 10.0)
    }
}

/// A completed handover.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HandoverEvent {
    /// Cell the user left.
    pub from: usize,
    /// Cell the user joined.
    pub to: usize,
    /// Ticks from the margin first holding to the new association being
    /// usable: dwell window plus association outage.
    pub latency_ticks: u32,
}

/// Per-user association state machine.
#[derive(Clone, Debug)]
pub struct Association {
    /// Currently associated cell.
    pub serving: usize,
    candidate: Option<(usize, u32)>,
    outage_left: u32,
}

impl Association {
    /// Associate with `serving` (no outage: the user starts joined).
    pub fn new(serving: usize) -> Association {
        Association {
            serving,
            candidate: None,
            outage_left: 0,
        }
    }

    /// Whether the user is currently in an association outage (receives
    /// nothing this tick).
    pub fn in_outage(&self) -> bool {
        self.outage_left > 0
    }

    /// Advance one tick given this tick's per-cell received signal powers
    /// (W, indexed by cell id). Returns the handover if one executes this
    /// tick.
    ///
    /// Ties (and everything within the hysteresis margin) resolve in
    /// favour of the serving cell; among equal candidates the lowest cell
    /// id wins, so the decision is deterministic.
    pub fn step(&mut self, rss_w: &[f64], policy: &HandoverPolicy) -> Option<HandoverEvent> {
        assert!(self.serving < rss_w.len(), "serving cell out of range");
        self.tick_outage();
        let mut best = 0usize;
        for (i, &p) in rss_w.iter().enumerate() {
            if p > rss_w[best] {
                best = i;
            }
        }
        self.decide(rss_w, best, policy)
    }

    /// Like [`Association::step`], but ranks only the cells in
    /// `candidates` (ascending cell ids; must include the serving cell).
    ///
    /// Reaches a bit-identical decision to [`Association::step`] whenever
    /// `candidates` contains every cell with nonzero received power:
    /// luminaires outside the receiver's field of view contribute exactly
    /// 0 W through the Lambertian path, so the event-driven core's
    /// neighbourhood window can prune them without perturbing the argmax
    /// (ties resolve to the lowest id in both variants, and an all-zero
    /// slate never clears the hysteresis margin either way).
    pub fn step_subset(
        &mut self,
        rss_w: &[f64],
        candidates: &[usize],
        policy: &HandoverPolicy,
    ) -> Option<HandoverEvent> {
        assert!(self.serving < rss_w.len(), "serving cell out of range");
        debug_assert!(
            candidates.contains(&self.serving),
            "candidates must include the serving cell"
        );
        debug_assert!(candidates.windows(2).all(|w| w[0] < w[1]), "ascending ids");
        self.tick_outage();
        let mut best = candidates[0];
        for &i in candidates {
            if rss_w[i] > rss_w[best] {
                best = i;
            }
        }
        self.decide(rss_w, best, policy)
    }

    fn tick_outage(&mut self) {
        if self.outage_left > 0 {
            self.outage_left -= 1;
        }
    }

    fn decide(
        &mut self,
        rss_w: &[f64],
        best: usize,
        policy: &HandoverPolicy,
    ) -> Option<HandoverEvent> {
        let clears_margin =
            best != self.serving && rss_w[best] > rss_w[self.serving] * policy.hysteresis_ratio();
        if !clears_margin {
            self.candidate = None;
            return None;
        }
        let dwell = match self.candidate {
            // The same candidate held for another tick.
            Some((cell, d)) if cell == best => d + 1,
            // New (or switched) candidate: the window restarts.
            _ => 1,
        };
        if dwell < policy.dwell_ticks.max(1) {
            self.candidate = Some((best, dwell));
            return None;
        }
        let ev = HandoverEvent {
            from: self.serving,
            to: best,
            latency_ticks: policy.dwell_ticks.max(1) + policy.assoc_delay_ticks,
        };
        self.serving = best;
        self.candidate = None;
        self.outage_left = policy.assoc_delay_ticks;
        Some(ev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> HandoverPolicy {
        HandoverPolicy::standard()
    }

    #[test]
    fn no_ping_pong_between_equidistant_cells() {
        // A user on the midline between two cells: both signals equal,
        // with a small alternating wobble well inside the 3 dB margin.
        // The association must never move — in either direction.
        let mut assoc = Association::new(0);
        for tick in 0..10_000 {
            let wobble = if tick % 2 == 0 { 1.05 } else { 0.95 };
            let rss = [1.0e-6, 1.0e-6 * wobble];
            assert_eq!(
                assoc.step(&rss, &policy()),
                None,
                "ping-pong at tick {tick}"
            );
            assert_eq!(assoc.serving, 0);
        }
    }

    #[test]
    fn exactly_equal_signals_never_trigger() {
        let mut assoc = Association::new(1);
        for _ in 0..1_000 {
            assert_eq!(assoc.step(&[2.0e-6, 2.0e-6, 2.0e-6], &policy()), None);
        }
        assert_eq!(assoc.serving, 1);
    }

    #[test]
    fn clear_winner_hands_over_after_dwell_with_correct_latency() {
        let p = policy();
        let mut assoc = Association::new(0);
        // Cell 1 is 6 dB up: clears the 3 dB margin every tick.
        let rss = [1.0e-6, 4.0e-6];
        for tick in 0..p.dwell_ticks - 1 {
            assert_eq!(assoc.step(&rss, &p), None, "fired early at {tick}");
            assert_eq!(assoc.serving, 0);
        }
        let ev = assoc.step(&rss, &p).expect("handover must fire");
        assert_eq!(ev.from, 0);
        assert_eq!(ev.to, 1);
        assert_eq!(ev.latency_ticks, p.dwell_ticks + p.assoc_delay_ticks);
        assert_eq!(assoc.serving, 1);
        // The association outage lasts exactly assoc_delay_ticks ticks.
        let mut outage = 0;
        for _ in 0..20 {
            if assoc.in_outage() {
                outage += 1;
            }
            assoc.step(&rss, &p);
        }
        assert_eq!(outage, p.assoc_delay_ticks);
    }

    #[test]
    fn margin_blip_resets_the_dwell_window() {
        let p = policy();
        let mut assoc = Association::new(0);
        let strong = [1.0e-6, 4.0e-6];
        let weak = [1.0e-6, 1.1e-6]; // inside the margin
        for _ in 0..p.dwell_ticks - 1 {
            assert_eq!(assoc.step(&strong, &p), None);
        }
        // One tick back inside the margin: the trigger must restart.
        assert_eq!(assoc.step(&weak, &p), None);
        for tick in 0..p.dwell_ticks - 1 {
            assert_eq!(assoc.step(&strong, &p), None, "fired early at {tick}");
        }
        assert!(assoc.step(&strong, &p).is_some());
    }

    #[test]
    fn candidate_switch_restarts_the_window() {
        let p = policy();
        let mut assoc = Association::new(0);
        let cand1 = [1.0e-6, 4.0e-6, 1.0e-7];
        let cand2 = [1.0e-6, 1.0e-7, 4.0e-6];
        for _ in 0..p.dwell_ticks - 1 {
            assert_eq!(assoc.step(&cand1, &p), None);
        }
        // Best cell changes: no credit carries over.
        assert_eq!(assoc.step(&cand2, &p), None);
        for _ in 0..p.dwell_ticks - 2 {
            assert_eq!(assoc.step(&cand2, &p), None);
        }
        let ev = assoc.step(&cand2, &p).expect("handover to cell 2");
        assert_eq!(ev.to, 2);
    }

    #[test]
    fn step_subset_matches_full_step_on_zero_padded_slates() {
        // A slate where the far cells are exactly 0 W (outside the FoV):
        // ranking only the nonzero neighbourhood + serving must reproduce
        // the full scan, including through a complete handover.
        let p = policy();
        let mut full = Association::new(1);
        let mut sub = Association::new(1);
        let rss = [0.0, 1.0e-6, 4.1e-6, 0.0, 0.0];
        for _ in 0..p.dwell_ticks + 4 {
            let a = full.step(&rss, &p);
            let b = sub.step_subset(&rss, &[1, 2], &p);
            assert_eq!(a, b);
            assert_eq!(full.serving, sub.serving);
        }
        assert_eq!(full.serving, 2);
    }

    #[test]
    fn step_subset_all_zero_slate_is_inert() {
        // Every candidate at exactly 0 W (user outside everyone's FoV):
        // no margin can clear, the serving cell is retained — matching
        // the full scan, whose argmax lands on index 0 but goes unused.
        let p = policy();
        let mut sub = Association::new(3);
        for _ in 0..100 {
            assert_eq!(sub.step_subset(&[0.0; 5], &[2, 3, 4], &p), None);
            assert_eq!(sub.serving, 3);
        }
    }

    #[test]
    fn dead_serving_cell_recovers_via_handover() {
        // Serving signal collapses to zero (user walked out of its FoV):
        // any live neighbour clears the margin and takes over.
        let p = policy();
        let mut assoc = Association::new(0);
        let rss = [0.0, 3.0e-7];
        let mut fired = None;
        for _ in 0..p.dwell_ticks + 1 {
            if let Some(ev) = assoc.step(&rss, &p) {
                fired = Some(ev);
                break;
            }
        }
        assert_eq!(fired.expect("must escape a dead cell").to, 1);
    }
}
