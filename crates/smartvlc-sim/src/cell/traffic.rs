//! Replay the smartvlc-net workload mix through the cell battery.
//!
//! The cell simulation's delivery model is saturated full-buffer
//! download: every granted tick moves as many payload bits as the
//! analytic RX path allows. That is the right measure of *link
//! capacity*, but it says nothing about what an application would
//! experience. This bridge rides along as a **pure observer**: each user
//! runs one deterministic [`WorkloadGen`] (web / video / IoT by
//! `user % 3`, the smartvlc-net battery's shapes), arrivals queue per
//! user, and the bits each grant actually delivers drain the queue —
//! yielding per-flow completion times (FCT) without perturbing the
//! delivery math, the RNG streams, or any byte of the existing columns.
//!
//! Determinism: the generators live on keyed forks of the run seed
//! (`root.fork("traffic").fork_idx(user)`), independent of the ambient/
//! luminaire/user streams, and [`WorkloadGen::poll`] is timeline-ordered
//! regardless of poll cadence — so a user whose grants were cancelled
//! during an outage polls a burst of queued arrivals afterwards and the
//! draw sequence is unchanged. FCTs are recorded at tick granularity
//! (completion stamps at the end of the delivering tick), in grant
//! order, which is ascending user id within a tick: byte-identical at
//! any `SMARTVLC_THREADS`.
//!
//! Flows that never finish by the end of the run stay in their queues
//! and count as offered-but-not-completed; an IoT burst whose datagrams
//! straddle a fully-drained queue is counted per contiguous fragment.

use super::suite::f6;
use desim::{DetRng, SimTime};
use serde::{Deserialize, Serialize};
use smartvlc_net::{WorkloadGen, WorkloadSpec};
use std::collections::VecDeque;

/// What the cell's users download — selected through
/// [`CellScenarioBuilder::traffic`](crate::scenario::CellScenarioBuilder::traffic).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub enum CellTrafficSpec {
    /// Saturated full-buffer download (the historical model; no flow
    /// accounting, [`CellReport::traffic`](super::CellReport::traffic)
    /// is `None`).
    #[default]
    Saturated,
    /// The smartvlc-net workload mix: user `j` runs web (`j % 3 == 0`),
    /// video (`1`) or IoT telemetry (`2`), and the report gains per-flow
    /// completion times.
    NetMix,
}

/// Flow-level outcome of a [`CellTrafficSpec::NetMix`] run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CellTrafficReport {
    /// Application flows that arrived during the run.
    pub flows_offered: u64,
    /// Flows whose last byte was delivered before the run ended.
    pub flows_completed: u64,
    /// Payload bits actually consumed by flows (≤ the link's delivered
    /// bits — the saturated columns measure capacity, this measures
    /// demand met).
    pub payload_bits: f64,
    /// Mean flow completion time, s (`None` if nothing completed).
    pub fct_mean_s: Option<f64>,
    /// Median flow completion time, s.
    pub fct_p50_s: Option<f64>,
    /// 95th-percentile flow completion time, s.
    pub fct_p95_s: Option<f64>,
}

impl CellTrafficReport {
    /// Deterministic JSON fragment (stable key order, fixed float
    /// formatting) for the BENCH_cell policy section.
    pub fn to_json_fragment(&self) -> String {
        let opt = |v: Option<f64>| v.map_or("null".to_string(), f6);
        format!(
            "\"flows_offered\": {}, \"flows_completed\": {}, \"payload_bits\": {}, \
             \"fct_mean_s\": {}, \"fct_p50_s\": {}, \"fct_p95_s\": {}",
            self.flows_offered,
            self.flows_completed,
            f6(self.payload_bits),
            opt(self.fct_mean_s),
            opt(self.fct_p50_s),
            opt(self.fct_p95_s),
        )
    }
}

/// One queued application flow (merged contiguous datagrams of one
/// `app_flow`).
#[derive(Clone, Debug)]
struct FlowJob {
    app_flow: u32,
    arrival_s: f64,
    remaining_bits: f64,
}

/// Per-run traffic state the event core owns when the config asks for
/// [`CellTrafficSpec::NetMix`].
pub(crate) struct TrafficState {
    gens: Vec<WorkloadGen>,
    queues: Vec<VecDeque<FlowJob>>,
    fcts_s: Vec<f64>,
    flows_offered: u64,
    flows_completed: u64,
    payload_bits: f64,
}

impl TrafficState {
    /// Build the per-user generators from their own keyed fork of the
    /// run seed — adding this stream perturbs no existing one.
    pub(crate) fn new(n_users: usize, seed: u64) -> TrafficState {
        let root = DetRng::seed_from_u64(seed).fork("traffic");
        let gens = (0..n_users)
            .map(|j| {
                let spec = match j % 3 {
                    0 => WorkloadSpec::web(),
                    1 => WorkloadSpec::video(),
                    _ => WorkloadSpec::iot(),
                };
                WorkloadGen::new(spec, root.fork_idx(j as u64))
            })
            .collect();
        TrafficState {
            gens,
            queues: vec![VecDeque::new(); n_users],
            fcts_s: Vec::new(),
            flows_offered: 0,
            flows_completed: 0,
            payload_bits: 0.0,
        }
    }

    /// Observe one fired grant: poll `user`'s arrivals up to `now`, then
    /// drain up to `bits` of queued payload, stamping completions at
    /// `end_s` (the end of the delivering tick).
    pub(crate) fn on_grant(&mut self, user: usize, now: SimTime, end_s: f64, bits: f64) {
        let q = &mut self.queues[user];
        for a in self.gens[user].poll(now) {
            let add = (a.bytes * 8) as f64;
            match q.back_mut() {
                // Datagrams of one burst polled together merge into one
                // flow job; FCT runs from the flow's first arrival.
                Some(j) if j.app_flow == a.app_flow => j.remaining_bits += add,
                _ => {
                    q.push_back(FlowJob {
                        app_flow: a.app_flow,
                        arrival_s: a.at.as_nanos() as f64 * 1e-9,
                        remaining_bits: add,
                    });
                    self.flows_offered += 1;
                }
            }
        }
        let mut budget = bits;
        while budget > 0.0 {
            let Some(front) = q.front_mut() else { break };
            if front.remaining_bits <= budget {
                budget -= front.remaining_bits;
                self.payload_bits += front.remaining_bits;
                self.fcts_s.push((end_s - front.arrival_s).max(0.0));
                self.flows_completed += 1;
                q.pop_front();
            } else {
                front.remaining_bits -= budget;
                self.payload_bits += budget;
                budget = 0.0;
            }
        }
    }

    /// Fold the run into the report.
    pub(crate) fn report(&self) -> CellTrafficReport {
        let p = crate::stats_util::try_percentiles(&self.fcts_s);
        CellTrafficReport {
            flows_offered: self.flows_offered,
            flows_completed: self.flows_completed,
            payload_bits: self.payload_bits,
            fct_mean_s: if self.fcts_s.is_empty() {
                None
            } else {
                Some(self.fcts_s.iter().sum::<f64>() / self.fcts_s.len() as f64)
            },
            fct_p50_s: p.map(|p| p.p50),
            fct_p95_s: p.map(|p| p.p95),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flows_queue_during_starvation_and_complete_when_served() {
        let mut ts = TrafficState::new(3, 42);
        // Starve user 0 for a simulated second: arrivals queue, nothing
        // completes.
        for tick in 0..10u32 {
            let now = SimTime::from_nanos(tick as u64 * 100_000_000);
            ts.on_grant(0, now, (tick + 1) as f64 * 0.1, 0.0);
        }
        assert!(ts.flows_offered > 0, "a second of web traffic must arrive");
        assert_eq!(ts.flows_completed, 0);
        // One fat grant drains everything queued so far.
        ts.on_grant(0, SimTime::from_nanos(1_000_000_000), 1.1, 1e9);
        assert_eq!(ts.flows_completed, ts.flows_offered);
        let r = ts.report();
        assert_eq!(r.flows_completed, ts.flows_completed);
        assert!(r.fct_mean_s.unwrap() > 0.0);
        assert!(r.payload_bits > 0.0);
    }

    #[test]
    fn partial_drain_preserves_the_remainder() {
        let mut ts = TrafficState::new(1, 7);
        // Accumulate some arrivals.
        ts.on_grant(0, SimTime::from_nanos(2_000_000_000), 2.1, 0.0);
        let offered = ts.flows_offered;
        assert!(offered > 0);
        let total: f64 = ts.queues[0].iter().map(|j| j.remaining_bits).sum();
        // Deliver half of the first flow.
        let half = ts.queues[0][0].remaining_bits / 2.0;
        ts.on_grant(0, SimTime::from_nanos(2_000_000_000), 2.2, half);
        assert_eq!(ts.flows_completed, 0);
        let left: f64 = ts.queues[0].iter().map(|j| j.remaining_bits).sum();
        assert!((total - left - half).abs() < 1e-9);
    }

    #[test]
    fn state_is_deterministic_per_seed_and_varies_across_seeds() {
        let run = |seed| {
            let mut ts = TrafficState::new(4, seed);
            for tick in 0..50u32 {
                let now = SimTime::from_nanos(tick as u64 * 100_000_000);
                for u in 0..4 {
                    ts.on_grant(u, now, (tick + 1) as f64 * 0.1, 20_000.0);
                }
            }
            let r = ts.report();
            (r.flows_offered, r.flows_completed, r.payload_bits.to_bits())
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2), "seeds must matter");
    }

    #[test]
    fn json_fragment_is_stable_and_handles_empty_runs() {
        let ts = TrafficState::new(1, 1);
        let r = ts.report();
        assert_eq!(r.flows_completed, 0);
        let frag = r.to_json_fragment();
        assert!(frag.contains("\"fct_mean_s\": null"), "{frag}");
        assert!(frag.contains("\"flows_offered\": 0"), "{frag}");
    }
}
