//! Day-long planning-level simulation.
//!
//! The slot-level link simulation is exact but costs ~10⁵ events per
//! simulated second; a whole office day (10⁵ s) calls for the
//! *planning-level* abstraction instead: step the ambient profile at the
//! sensing cadence, run the real adaptation logic and the real AMPPM
//! planner at each step, and read the throughput off the plan rather
//! than flying every slot. Everything control-plane is bit-identical to
//! the full simulation; only the per-slot noise is replaced by the
//! analytic rate. This powers the whole-day energy/throughput/adaptation
//! figures a deployment study would want.

use desim::{SimDuration, SimTime};
use smartvlc_core::adaptation::{AdaptationStepper, FixedStepper, PerceptionStepper};
use smartvlc_core::dimming::IlluminationTarget;
use smartvlc_core::{AmppmPlanner, DimmingLevel, SystemConfig};
use smartvlc_link::link::TracePoint;
use vlc_channel::ambient::AmbientProfile;

/// One sensing-cadence sample of the day.
#[derive(Clone, Copy, Debug)]
pub struct DayPoint {
    /// Time, hours since start.
    pub t_h: f64,
    /// Normalized ambient.
    pub ambient: f64,
    /// LED level after adaptation.
    pub led: f64,
    /// Planned AMPPM goodput at that level, bit/s.
    pub plan_bps: f64,
}

/// Aggregates of a day-long run.
#[derive(Clone, Debug)]
pub struct DayReport {
    /// The sampled day.
    pub points: Vec<DayPoint>,
    /// Mean planned goodput across the day, bit/s.
    pub mean_plan_bps: f64,
    /// Total perception-domain adaptation steps.
    pub smart_steps: u64,
    /// Total fixed-step baseline steps.
    pub fixed_steps: u64,
    /// LED trace in the shape the energy module consumes.
    pub trace: Vec<TracePoint>,
}

/// Run a day: `hours` of the ambient profile at `sense_interval`
/// cadence, holding total illumination at `i_sum` (normalized).
pub fn run_day(
    ambient: &mut dyn AmbientProfile,
    hours: f64,
    sense_interval: SimDuration,
    i_sum: f64,
    full_scale_lux: f64,
) -> DayReport {
    let cfg = SystemConfig::default();
    let planner = AmppmPlanner::new(cfg.clone()).expect("valid config");
    let illum = IlluminationTarget::new(i_sum);
    let smart = PerceptionStepper::new(cfg.tau_p);
    let fixed = FixedStepper::flicker_safe(cfg.tau_p, 0.1);

    let mut led = illum
        .led_level_for(ambient.lux_at(SimTime::ZERO) / full_scale_lux)
        .value();
    let mut points = Vec::new();
    let mut trace = Vec::new();
    let (mut smart_steps, mut fixed_steps) = (0u64, 0u64);
    let mut rate_sum = 0.0;

    let steps = ((hours * 3600.0) / sense_interval.as_secs_f64()).ceil() as u64;
    for i in 0..=steps {
        let t = SimTime::ZERO + sense_interval * i;
        let norm = (ambient.lux_at(t) / full_scale_lux).clamp(0.0, 1.0);
        let target = illum.led_level_for(norm).value();
        // Same deadband rule as the live transmitter.
        let dp = (smartvlc_core::adaptation::perceived(target)
            - smartvlc_core::adaptation::perceived(led))
        .abs();
        if dp >= cfg.tau_p {
            smart_steps += smart.step_count(led, target) as u64;
            fixed_steps += fixed.step_count(led, target) as u64;
            led = target;
        }
        let plan_bps = planner
            .plan_clamped(DimmingLevel::clamped(led))
            .map(|p| p.rate_bps)
            .unwrap_or(0.0);
        rate_sum += plan_bps;
        points.push(DayPoint {
            t_h: t.as_secs_f64() / 3600.0,
            ambient: norm,
            led,
            plan_bps,
        });
        trace.push(TracePoint {
            t_s: t.as_secs_f64(),
            ambient: norm,
            led,
        });
    }
    DayReport {
        mean_plan_bps: rate_sum / points.len() as f64,
        smart_steps,
        fixed_steps,
        points,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::DetRng;
    use vlc_channel::ambient::DiurnalProfile;

    fn day() -> DayReport {
        let mut profile = DiurnalProfile::dutch_autumn(DetRng::seed_from_u64(1));
        run_day(&mut profile, 24.0, SimDuration::secs(60), 1.0, 10_000.0)
    }

    #[test]
    fn night_runs_full_brightness_noon_dims() {
        let r = day();
        let night = &r.points[10]; // ~00:10
        assert!(night.led > 0.99, "{night:?}");
        let noon = r
            .points
            .iter()
            .min_by(|a, b| a.led.partial_cmp(&b.led).unwrap())
            .unwrap();
        assert!(noon.led < 0.45, "{noon:?}");
        assert!((11.0..15.0).contains(&noon.t_h), "{noon:?}");
    }

    #[test]
    fn throughput_peaks_when_led_is_midrange() {
        // The day's best planned rate happens when daylight pushes the
        // LED through ~0.5 (morning/afternoon shoulders).
        let r = day();
        let best = r
            .points
            .iter()
            .max_by(|a, b| a.plan_bps.partial_cmp(&b.plan_bps).unwrap())
            .unwrap();
        assert!((0.35..0.65).contains(&best.led), "{best:?}");
        assert!(best.plan_bps > 100_000.0);
        // Night rate (l ~ 1.0) is near zero; mean sits between.
        assert!(r.mean_plan_bps > 20_000.0 && r.mean_plan_bps < 100_000.0);
    }

    #[test]
    fn adaptation_reduction_holds_at_day_scale() {
        let r = day();
        assert!(r.smart_steps > 100, "{}", r.smart_steps);
        let reduction = 1.0 - r.smart_steps as f64 / r.fixed_steps as f64;
        assert!((0.25..0.65).contains(&reduction), "reduction={reduction}");
    }

    #[test]
    fn energy_saving_over_a_day() {
        let r = day();
        let e = crate::energy::energy_from_trace(&r.trace, 4.7).unwrap();
        // Ten cloudy daylight hours against fourteen of night: the
        // saving lands in the low double digits over the full 24 h
        // (substantially higher over office hours alone).
        assert!(e.saving > 0.08 && e.saving < 0.60, "saving={}", e.saving);
    }

    #[test]
    fn clear_sky_day_is_deterministic() {
        let mk = || {
            let mut p = vlc_channel::ambient::DiurnalProfile::clear_sky(7.0, 19.0, 9500.0);
            run_day(&mut p, 24.0, SimDuration::secs(120), 1.0, 10_000.0)
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.smart_steps, b.smart_steps);
        assert_eq!(a.mean_plan_bps, b.mean_plan_bps);
    }
}
