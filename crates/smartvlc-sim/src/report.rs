//! Tabular and terminal output for the figure/table generators — and the
//! one import path for every battery's result types.
//!
//! Every `bench` binary both *prints* its figure (markdown table and an
//! ASCII chart, so the reproduction is inspectable without plotting
//! tools) and *persists* the raw series as CSV next to the binary's
//! working directory for external plotting.
//!
//! Battery summaries used to be reachable only through three
//! module-local paths (`cell::suite`, `chaos`, `net_suite`); a report
//! consumer can now import everything it renders from here.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

pub use crate::cell::suite::{
    CellScenario, CellSuiteSummary, PolicyPoint, PolicyScenario, ScalePoint,
};
pub use crate::chaos::{ChaosFecComparison, ChaosOutcome, ChaosScenario, ChaosSummary};
pub use crate::net_suite::{NetFecComparison, NetOutcome, NetScenario, NetSummary};

/// Write rows as CSV.
pub fn write_csv<P: AsRef<Path>>(
    path: P,
    headers: &[&str],
    rows: &[Vec<String>],
) -> io::Result<()> {
    let mut out = String::new();
    out.push_str(&headers.join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    std::fs::write(path, out)
}

/// Render rows as a markdown table.
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut s = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| {
        let mut line = String::from("|");
        for (i, c) in cells.iter().enumerate() {
            let w = widths.get(i).copied().unwrap_or(c.len());
            let _ = write!(line, " {c:<w$} |");
        }
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    s.push_str(&fmt_row(&header_cells, &widths));
    s.push('\n');
    s.push('|');
    for w in &widths {
        let _ = write!(s, "{}|", "-".repeat(w + 2));
    }
    s.push('\n');
    for row in rows {
        s.push_str(&fmt_row(row, &widths));
        s.push('\n');
    }
    s
}

/// Plot one or more named series as an ASCII chart.
///
/// All series share the x grid of the first series (values are plotted
/// by index, labelled with the x values). Height is in character rows.
pub fn ascii_chart(
    title: &str,
    x_label: &str,
    y_label: &str,
    x: &[f64],
    series: &[(&str, Vec<f64>)],
    height: usize,
) -> String {
    const MARKS: &[char] = &['*', 'o', '+', 'x', '#', '@'];
    let mut s = format!("{title}\n");
    if x.is_empty() || series.is_empty() {
        s.push_str("(no data)\n");
        return s;
    }
    let y_max = series
        .iter()
        .flat_map(|(_, ys)| ys.iter().copied())
        .fold(f64::MIN, f64::max);
    let y_min = series
        .iter()
        .flat_map(|(_, ys)| ys.iter().copied())
        .fold(f64::MAX, f64::min);
    let span = (y_max - y_min).max(1e-12);
    let width = x.len();
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, ys)) in series.iter().enumerate() {
        let mark = MARKS[si % MARKS.len()];
        for (i, &y) in ys.iter().enumerate().take(width) {
            let row = ((y - y_min) / span * (height - 1) as f64).round() as usize;
            let row = height - 1 - row.min(height - 1);
            grid[row][i] = mark;
        }
    }
    let _ = writeln!(s, "  {y_label}: {y_min:.1} .. {y_max:.1}");
    for row in grid {
        let line: String = row.into_iter().collect();
        let _ = writeln!(s, "  |{line}");
    }
    let _ = writeln!(s, "  +{}", "-".repeat(width));
    let _ = writeln!(
        s,
        "   {x_label}: {:.2} .. {:.2}   legend: {}",
        x[0],
        x[x.len() - 1],
        series
            .iter()
            .enumerate()
            .map(|(i, (name, _))| format!("{}={}", MARKS[i % MARKS.len()], name))
            .collect::<Vec<_>>()
            .join("  ")
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("smartvlc_report_test.csv");
        write_csv(
            &dir,
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        )
        .unwrap();
        let body = std::fs::read_to_string(&dir).unwrap();
        assert_eq!(body, "a,b\n1,2\n3,4\n");
        std::fs::remove_file(&dir).ok();
    }

    #[test]
    fn markdown_aligns_columns() {
        let md = markdown_table(
            &["level", "kbps"],
            &[
                vec!["0.1".into(), "47.6".into()],
                vec!["0.5".into(), "111.8".into()],
            ],
        );
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("level"));
        assert!(lines[1].starts_with("|--"));
        // All rows the same width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn chart_contains_marks_and_legend() {
        let x: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let a: Vec<f64> = x.iter().map(|v| v * v).collect();
        let b: Vec<f64> = x.iter().map(|v| 400.0 - v * v).collect();
        let chart = ascii_chart("test", "x", "y", &x, &[("up", a), ("down", b)], 10);
        assert!(chart.contains('*'));
        assert!(chart.contains('o'));
        assert!(chart.contains("*=up"));
        assert!(chart.contains("o=down"));
        assert_eq!(chart.lines().count(), 14);
    }

    #[test]
    fn chart_handles_empty() {
        let chart = ascii_chart("t", "x", "y", &[], &[], 5);
        assert!(chart.contains("no data"));
    }

    #[test]
    fn chart_handles_flat_series() {
        let x = vec![0.0, 1.0, 2.0];
        let chart = ascii_chart("flat", "x", "y", &x, &[("c", vec![5.0, 5.0, 5.0])], 4);
        assert!(chart.contains('*'));
    }
}
