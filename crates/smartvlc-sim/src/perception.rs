//! The virtual 20-subject flicker perception study.
//!
//! The paper runs two human studies it cannot share subjects for:
//!
//! * **§6.1** — find the Type-I threshold `fth`: 20 volunteers watch the
//!   LED toggled at decreasing frequencies; 250 Hz is the lowest rate no
//!   subject perceives (slightly above the 200 Hz of IEEE 802.15.7).
//! * **§6.3 / Table 2** — find the Type-II threshold: subjects watch
//!   brightness steps of varying resolution under three ambient
//!   conditions (L1 sunny+ceiling, L2 sunny, L3 dark) and two viewing
//!   modes (direct at the LED / indirect via reflection); 0.003 is the
//!   largest step nobody detects in any condition.
//!
//! We replace the volunteers with a standard psychophysics model: each
//! subject has a personal detection threshold drawn from a per-condition
//! normal distribution, detecting any stimulus above it. The condition
//! means/spreads are calibrated so the *population percentages* land on
//! Table 2: dark-adapted pupils make subjects more sensitive (lower
//! threshold in L3), and direct viewing is roughly 10× more sensitive
//! than indirect.

use desim::DetRng;
use serde::{Deserialize, Serialize};

/// Ambient conditions of the study (§6.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum StudyCondition {
    /// L1: sunny day, ceiling lights on (8900–9760 lux).
    L1SunnyCeilingOn,
    /// L2: sunny day, ceiling lights off (7960–8200 lux).
    L2SunnyCeilingOff,
    /// L3: blind down, ceiling off (12–21 lux).
    L3Dark,
}

impl StudyCondition {
    /// All three, in Table 2 column order.
    pub const ALL: [StudyCondition; 3] = [
        StudyCondition::L1SunnyCeilingOn,
        StudyCondition::L2SunnyCeilingOff,
        StudyCondition::L3Dark,
    ];

    /// Table 2 column label.
    pub fn label(self) -> &'static str {
        match self {
            StudyCondition::L1SunnyCeilingOn => "L1",
            StudyCondition::L2SunnyCeilingOff => "L2",
            StudyCondition::L3Dark => "L3",
        }
    }
}

/// How the subject observes the LED (Fig. 18).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Viewing {
    /// Looking straight at the LED (Fig. 18(a)).
    Direct,
    /// Judging by reflected light (Fig. 18(b)).
    Indirect,
}

/// A per-condition threshold distribution.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ThresholdModel {
    /// Population mean detection threshold.
    pub mu: f64,
    /// Population standard deviation.
    pub sigma: f64,
}

/// Calibrated Type-II (brightness-step) threshold distributions.
///
/// Calibration targets are Table 2's percentages; e.g. direct/L1 must
/// give 0% at 0.004, ~5% at 0.005, ~40% at 0.006 and 100% at 0.007.
pub fn step_threshold_model(viewing: Viewing, condition: StudyCondition) -> ThresholdModel {
    match (viewing, condition) {
        (Viewing::Direct, StudyCondition::L1SunnyCeilingOn) => ThresholdModel {
            mu: 0.0061,
            sigma: 0.00042,
        },
        (Viewing::Direct, StudyCondition::L2SunnyCeilingOff) => ThresholdModel {
            mu: 0.0053,
            sigma: 0.00048,
        },
        (Viewing::Direct, StudyCondition::L3Dark) => ThresholdModel {
            mu: 0.0045,
            sigma: 0.00050,
        },
        (Viewing::Indirect, StudyCondition::L1SunnyCeilingOn) => ThresholdModel {
            mu: 0.0625,
            sigma: 0.0028,
        },
        (Viewing::Indirect, StudyCondition::L2SunnyCeilingOff) => ThresholdModel {
            mu: 0.0600,
            sigma: 0.0032,
        },
        (Viewing::Indirect, StudyCondition::L3Dark) => ThresholdModel {
            mu: 0.0565,
            sigma: 0.0032,
        },
    }
}

/// Type-I critical flicker fusion distribution: subjects perceive a
/// square-wave toggle below their personal CFF. Mean ~185 Hz with ~20 Hz
/// spread puts a tail just above the 200 Hz standard — exactly why the
/// paper's volunteers forced the margin up to 250 Hz.
pub fn cff_model() -> ThresholdModel {
    ThresholdModel {
        mu: 185.0,
        sigma: 20.0,
    }
}

/// One virtual volunteer: thresholds for every condition plus a CFF.
#[derive(Clone, Debug)]
pub struct Subject {
    step_thresholds: Vec<(Viewing, StudyCondition, f64)>,
    cff_hz: f64,
}

impl Subject {
    fn sample(rng: &mut DetRng) -> Subject {
        let mut step_thresholds = Vec::new();
        for viewing in [Viewing::Direct, Viewing::Indirect] {
            for condition in StudyCondition::ALL {
                let m = step_threshold_model(viewing, condition);
                // Truncate at a small positive floor: nobody has a
                // negative detection threshold.
                let t = rng.next_normal(m.mu, m.sigma).max(m.mu * 0.3);
                step_thresholds.push((viewing, condition, t));
            }
        }
        let c = cff_model();
        Subject {
            step_thresholds,
            cff_hz: rng.next_normal(c.mu, c.sigma).max(60.0),
        }
    }

    /// Does this subject perceive a brightness step of `resolution`?
    pub fn perceives_step(
        &self,
        viewing: Viewing,
        condition: StudyCondition,
        resolution: f64,
    ) -> bool {
        let t = self
            .step_thresholds
            .iter()
            .find(|&&(v, c, _)| v == viewing && c == condition)
            .map(|&(_, _, t)| t)
            .expect("all conditions sampled");
        resolution > t
    }

    /// Does this subject perceive an ON/OFF square wave at `hz`?
    pub fn perceives_frequency(&self, hz: f64) -> bool {
        hz < self.cff_hz
    }
}

/// The 20-subject panel.
pub struct UserStudy {
    subjects: Vec<Subject>,
}

impl UserStudy {
    /// Recruit `n` deterministic virtual subjects (paper: 20, ages 19–41,
    /// 10 male / 10 female).
    pub fn recruit(n: usize, seed: u64) -> UserStudy {
        let root = DetRng::seed_from_u64(seed);
        let subjects = (0..n)
            .map(|i| Subject::sample(&mut root.fork_idx(i as u64)))
            .collect();
        UserStudy { subjects }
    }

    /// Panel size.
    pub fn len(&self) -> usize {
        self.subjects.len()
    }

    /// True when no subjects were recruited.
    pub fn is_empty(&self) -> bool {
        self.subjects.is_empty()
    }

    /// Percentage of the panel perceiving a brightness step (a Table 2
    /// cell).
    pub fn percent_perceiving_step(
        &self,
        viewing: Viewing,
        condition: StudyCondition,
        resolution: f64,
    ) -> f64 {
        let n = self
            .subjects
            .iter()
            .filter(|s| s.perceives_step(viewing, condition, resolution))
            .count();
        100.0 * n as f64 / self.subjects.len() as f64
    }

    /// Percentage perceiving a toggle frequency (the §6.1 fth study).
    pub fn percent_perceiving_frequency(&self, hz: f64) -> f64 {
        let n = self
            .subjects
            .iter()
            .filter(|s| s.perceives_frequency(hz))
            .count();
        100.0 * n as f64 / self.subjects.len() as f64
    }

    /// The largest resolution from `candidates` (sorted ascending) that
    /// *no* subject perceives in *any* viewing/condition combination —
    /// the paper's τp = 0.003 selection.
    pub fn max_safe_resolution(&self, candidates: &[f64]) -> Option<f64> {
        candidates
            .iter()
            .copied()
            .filter(|&r| {
                [Viewing::Direct, Viewing::Indirect].iter().all(|&v| {
                    StudyCondition::ALL
                        .iter()
                        .all(|&c| self.percent_perceiving_step(v, c, r) == 0.0)
                })
            })
            .fold(None, |acc, r| Some(acc.map_or(r, |a: f64| a.max(r))))
    }

    /// The smallest frequency from `candidates` that no subject perceives
    /// — the paper's fth = 250 Hz selection.
    pub fn min_safe_frequency(&self, candidates: &[f64]) -> Option<f64> {
        candidates
            .iter()
            .copied()
            .filter(|&hz| self.percent_perceiving_frequency(hz) == 0.0)
            .fold(None, |acc, hz| Some(acc.map_or(hz, |a: f64| a.min(hz))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn panel() -> UserStudy {
        UserStudy::recruit(20, 2017)
    }

    #[test]
    fn recruit_is_deterministic() {
        let a = panel();
        let b = panel();
        for (v, c, r) in [
            (Viewing::Direct, StudyCondition::L1SunnyCeilingOn, 0.005),
            (Viewing::Indirect, StudyCondition::L3Dark, 0.06),
        ] {
            assert_eq!(
                a.percent_perceiving_step(v, c, r),
                b.percent_perceiving_step(v, c, r)
            );
        }
    }

    #[test]
    fn table2_anchor_cells() {
        // The hard anchors of Table 2: nothing at 0.003 direct / 0.04
        // indirect; everything at 0.007 direct / 0.07+ indirect.
        let p = panel();
        for c in StudyCondition::ALL {
            assert_eq!(
                p.percent_perceiving_step(Viewing::Direct, c, 0.003),
                0.0,
                "direct {c:?} at 0.003"
            );
            assert_eq!(
                p.percent_perceiving_step(Viewing::Direct, c, 0.007),
                100.0,
                "direct {c:?} at 0.007"
            );
            assert_eq!(
                p.percent_perceiving_step(Viewing::Indirect, c, 0.04),
                0.0,
                "indirect {c:?} at 0.04"
            );
            assert_eq!(
                p.percent_perceiving_step(Viewing::Indirect, c, 0.08),
                100.0,
                "indirect {c:?} at 0.08"
            );
        }
    }

    #[test]
    fn darker_means_more_sensitive() {
        // Table 2's trend: "weaker ambient light (L3) makes users more
        // sensitive" — monotone percentages L1 <= L2 <= L3 at mid-range
        // stimuli.
        let p = panel();
        for (v, r) in [(Viewing::Direct, 0.0055), (Viewing::Indirect, 0.058)] {
            let l1 = p.percent_perceiving_step(v, StudyCondition::L1SunnyCeilingOn, r);
            let l2 = p.percent_perceiving_step(v, StudyCondition::L2SunnyCeilingOff, r);
            let l3 = p.percent_perceiving_step(v, StudyCondition::L3Dark, r);
            assert!(l1 <= l2 && l2 <= l3, "{v:?} r={r}: {l1} {l2} {l3}");
        }
    }

    #[test]
    fn direct_viewing_is_more_sensitive() {
        let p = panel();
        // A stimulus trivially seen directly is invisible indirectly.
        let c = StudyCondition::L2SunnyCeilingOff;
        assert_eq!(p.percent_perceiving_step(Viewing::Direct, c, 0.01), 100.0);
        assert_eq!(p.percent_perceiving_step(Viewing::Indirect, c, 0.01), 0.0);
    }

    #[test]
    fn paper_tau_p_is_selected() {
        // Candidates mirror Table 2's rows; 0.003 must be the winner.
        let p = panel();
        let safe = p
            .max_safe_resolution(&[0.003, 0.004, 0.005, 0.006, 0.007])
            .unwrap();
        assert_eq!(safe, 0.003);
    }

    #[test]
    fn paper_fth_is_selected() {
        // 250 Hz safe for all, 200 Hz (the 802.15.7 floor) not — §6.1.
        let p = panel();
        assert_eq!(p.percent_perceiving_frequency(250.0), 0.0);
        assert!(p.percent_perceiving_frequency(200.0) > 0.0);
        assert!(p.percent_perceiving_frequency(100.0) > 99.0);
        let safe = p
            .min_safe_frequency(&[100.0, 150.0, 200.0, 250.0, 300.0])
            .unwrap();
        assert_eq!(safe, 250.0);
    }

    #[test]
    fn percentages_are_monotone_in_stimulus() {
        let p = panel();
        for v in [Viewing::Direct, Viewing::Indirect] {
            for c in StudyCondition::ALL {
                let mut prev = -1.0;
                for i in 0..40 {
                    let r = 0.001 + i as f64 * 0.0025;
                    let pct = p.percent_perceiving_step(v, c, r);
                    assert!(pct >= prev, "{v:?} {c:?} r={r}");
                    prev = pct;
                }
            }
        }
    }
}
