//! Small statistics helpers for multi-seed experiment aggregation.
//!
//! The paper plots single measurement runs; a simulation can afford
//! replication. These helpers summarize per-seed results into mean ±
//! 95% confidence intervals so the figure generators can report error
//! bars.

use serde::{Deserialize, Serialize};

/// Mean / spread summary of one sample set.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub std_dev: f64,
    /// Half-width of the ~95% confidence interval on the mean
    /// (1.96·σ/√n; exact t quantiles are overkill for reporting).
    pub ci95: f64,
}

/// Summarize a sample set, or `None` for an empty one — the total-function
/// form for callers whose sample sets come from filters or sweeps that can
/// legitimately come up empty.
pub fn try_summarize(samples: &[f64]) -> Option<Summary> {
    if samples.is_empty() {
        return None;
    }
    let n = samples.len();
    let mean = samples.iter().sum::<f64>() / n as f64;
    let std_dev = if n < 2 {
        0.0
    } else {
        (samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64).sqrt()
    };
    Some(Summary {
        n,
        mean,
        std_dev,
        ci95: 1.96 * std_dev / (n as f64).sqrt(),
    })
}

/// Summarize a sample set. Panics on an empty slice; use
/// [`try_summarize`] where emptiness is a real possibility.
pub fn summarize(samples: &[f64]) -> Summary {
    try_summarize(samples).expect("no samples")
}

/// Nearest-rank percentile summary of one sample set — the tail-latency
/// view (p50/p95/p99) the net battery reports. Nearest-rank (rank
/// `⌈p/100·N⌉`, 1-indexed) always returns an observed sample, so the
/// values are exactly reproducible with no interpolation-order concerns.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Percentiles {
    /// Number of samples.
    pub n: usize,
    /// Median (50th percentile).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

/// Nearest-rank percentiles of a sample set, or `None` when empty.
/// NaN samples sort last (via `total_cmp`), so a stray NaN perturbs the
/// p99 rather than poisoning the whole summary.
pub fn try_percentiles(samples: &[f64]) -> Option<Percentiles> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let n = sorted.len();
    let at = |p: f64| -> f64 {
        let rank = ((p / 100.0 * n as f64).ceil() as usize).clamp(1, n);
        sorted[rank - 1]
    };
    Some(Percentiles {
        n,
        p50: at(50.0),
        p95: at(95.0),
        p99: at(99.0),
    })
}

/// Nearest-rank percentiles. Panics on an empty slice; use
/// [`try_percentiles`] where emptiness is a real possibility.
pub fn percentiles(samples: &[f64]) -> Percentiles {
    try_percentiles(samples).expect("no samples")
}

/// A single nearest-rank percentile (`p` in percent, clamped to
/// `(0, 100]`), or `None` when the sample set is empty — the general
/// form behind [`try_percentiles`], for percentiles the fixed p50/95/99
/// summary does not cover (the cell battery's p5 cell-edge rate).
pub fn try_percentile(samples: &[f64], p: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let n = sorted.len();
    let rank = ((p / 100.0 * n as f64).ceil() as usize).clamp(1, n);
    Some(sorted[rank - 1])
}

impl Summary {
    /// `mean ± ci95` formatted at the given precision.
    pub fn fmt(&self, prec: usize) -> String {
        format!("{:.prec$} ± {:.prec$}", self.mean, self.ci95)
    }

    /// Whether another summary's mean lies outside this one's CI — a
    /// quick significance screen for A-vs-B comparisons.
    pub fn separated_from(&self, other: &Summary) -> bool {
        (self.mean - other.mean).abs() > self.ci95 + other.ci95
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let s = summarize(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample std dev (n-1) of this classic set is ~2.138.
        assert!((s.std_dev - 2.1381).abs() < 1e-3, "{}", s.std_dev);
        assert!(s.ci95 > 0.0);
    }

    #[test]
    fn single_sample() {
        let s = summarize(&[42.0]);
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.ci95, 0.0);
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn empty_panics() {
        summarize(&[]);
    }

    #[test]
    fn try_summarize_is_total() {
        assert_eq!(try_summarize(&[]), None);
        let s = try_summarize(&[1.0, 3.0]).unwrap();
        assert_eq!(s.n, 2);
        assert_eq!(s.mean, 2.0);
        assert_eq!(Some(summarize(&[1.0, 3.0])), try_summarize(&[1.0, 3.0]));
    }

    #[test]
    fn separation_screen() {
        let a = summarize(&[10.0, 10.1, 9.9, 10.0]);
        let b = summarize(&[12.0, 12.1, 11.9, 12.0]);
        let c = summarize(&[10.05, 10.1, 9.95, 10.05]);
        assert!(a.separated_from(&b));
        assert!(!a.separated_from(&c));
    }

    #[test]
    fn fmt_rounds() {
        let s = summarize(&[1.234, 1.236]);
        assert!(
            s.fmt(2).starts_with("1.23 ±") || s.fmt(2).starts_with("1.24 ±"),
            "{}",
            s.fmt(2)
        );
    }

    #[test]
    fn nearest_rank_percentiles() {
        // 1..=100: nearest-rank percentiles are exactly the pth values.
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let p = percentiles(&samples);
        assert_eq!((p.n, p.p50, p.p95, p.p99), (100, 50.0, 95.0, 99.0));
        // Order must not matter.
        let mut rev = samples.clone();
        rev.reverse();
        assert_eq!(percentiles(&rev), p);
        // Small sets: nearest rank always returns an observed sample.
        let p = percentiles(&[7.0]);
        assert_eq!((p.p50, p.p95, p.p99), (7.0, 7.0, 7.0));
        let p = percentiles(&[1.0, 2.0]);
        assert_eq!((p.p50, p.p95, p.p99), (1.0, 2.0, 2.0));
        assert_eq!(try_percentiles(&[]), None);
    }

    #[test]
    fn single_percentile_matches_the_summary_and_reaches_p5() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(try_percentile(&samples, 5.0), Some(5.0));
        assert_eq!(
            try_percentile(&samples, 50.0),
            Some(percentiles(&samples).p50)
        );
        assert_eq!(
            try_percentile(&samples, 99.0),
            Some(percentiles(&samples).p99)
        );
        assert_eq!(try_percentile(&[], 5.0), None);
        // Tiny sets: nearest rank still returns an observed sample.
        assert_eq!(try_percentile(&[3.0, 9.0], 5.0), Some(3.0));
    }

    #[test]
    fn percentiles_tolerate_nan() {
        let p = percentiles(&[f64::NAN, 3.0, 1.0, 2.0]);
        assert_eq!(p.p50, 2.0, "NaN must sort last, not poison the median");
    }

    #[test]
    fn multi_seed_fig15_separation() {
        // The reproduced headline survives replication: AMPPM and OOK-CT
        // at l = 0.2 separate beyond their CIs across five seeds.
        use crate::static_run::run_scheme_comparison;
        use desim::SimDuration;
        use smartvlc_link::SchemeKind;
        let dur = SimDuration::millis(400);
        let collect = |scheme| -> Vec<f64> {
            (0..5)
                .map(|seed| run_scheme_comparison(scheme, &[0.2], dur, 100 + seed)[0].goodput_bps)
                .collect()
        };
        let amppm = summarize(&collect(SchemeKind::Amppm));
        let ook = summarize(&collect(SchemeKind::OokCt));
        assert!(
            amppm.separated_from(&ook),
            "amppm={} ook={}",
            amppm.fmt(0),
            ook.fmt(0)
        );
    }
}
