//! Net-suite battery: workload mixes over the datagram layer, with and
//! without faults, FEC off and on.
//!
//! Where the chaos battery asks "how much *goodput* survives a fault?",
//! this battery asks the question a deployment actually cares about:
//! **did the user's flow finish, and how long did its datagrams wait?**
//! Each [`NetScenario`] pairs a workload mix (one MAC flow per
//! workload) with a fault plan; every replicate runs the same seed
//! twice — FEC off and FEC on — so the tail-latency delta isolates what
//! the outer code buys under identical impairments.
//!
//! The suite fans out on [`crate::runner::par_sweep`], so the whole
//! report (including every percentile) is bit-identical at any
//! `SMARTVLC_THREADS`.

use crate::chaos::{CHAOS_AMBIENT_LUX, CHAOS_DISTANCE_M};
use crate::runner::{par_sweep, TaskId};
use crate::stats_util::{try_percentiles, Percentiles};
use desim::{SimDuration, SimTime};
use smartvlc_core::frame::format::FecMode;
use smartvlc_link::{LinkConfig, SchemeKind};
use smartvlc_net::{run_net_over_link, NetConfig, NetReport, WorkloadSpec};
use smartvlc_obs as obs;
use vlc_channel::faults::{FaultEvent, FaultKind, FaultPlan};

/// Wall-clock length of each net run, seconds. Longer than a chaos run:
/// flow-completion tails need room after the fault clears.
pub const NET_DURATION_S: u64 = 6;
/// Nominal outer-code profile for the fec-on leg.
pub const NET_FEC_NOMINAL: FecMode = FecMode::Medium;

/// A named workload mix + fault schedule.
#[derive(Clone, Debug)]
pub struct NetScenario {
    /// Stable identifier (also the JSON key in `BENCH_net.json`).
    pub name: &'static str,
    /// One-line description of the mix.
    pub description: &'static str,
    /// Workload builder — pure, one MAC flow per entry. Constructed
    /// through [`crate::scenario::NetScenarioBuilder`].
    pub(crate) workloads: fn() -> Vec<WorkloadSpec>,
    /// Fault schedule builder — pure, so every replicate sees the same
    /// plan (empty = the cooperative channel).
    pub(crate) events: fn() -> Vec<FaultEvent>,
}

impl NetScenario {
    /// The scenario's workload mix.
    pub fn workloads(&self) -> Vec<WorkloadSpec> {
        (self.workloads)()
    }

    /// The scenario's fault plan.
    pub fn plan(&self) -> FaultPlan {
        FaultPlan::new((self.events)())
    }
}

fn at_ms(ms: u64, dur_ms: u64, kind: FaultKind) -> FaultEvent {
    FaultEvent {
        at: SimTime::from_millis(ms),
        duration: SimDuration::millis(dur_ms),
        kind,
    }
}

fn mid_run_fade() -> Vec<FaultEvent> {
    // The occlusion-burst shape from the chaos battery, stretched to the
    // longer net run: a body clipping the beam mid-run. Queues build
    // while frames die; the latency tail records the drain afterwards.
    vec![at_ms(2500, 900, FaultKind::Occlusion { gain: 0.32 })]
}

fn web_pair() -> Vec<WorkloadSpec> {
    vec![WorkloadSpec::web(), WorkloadSpec::web()]
}

fn video_call() -> Vec<WorkloadSpec> {
    vec![WorkloadSpec::video(), WorkloadSpec::iot()]
}

fn iot_swarm() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec::iot(),
        WorkloadSpec::iot(),
        WorkloadSpec::iot(),
        WorkloadSpec::iot(),
    ]
}

fn bulk_vs_keepalive() -> Vec<WorkloadSpec> {
    // Oversubscription on purpose: two video streams plus web traffic
    // exceed the ~90 kbit/s fault-free capacity at the chaos operating
    // point. The DRR scheduler must keep the IoT keepalives flowing
    // while the bulk flows absorb the queueing.
    vec![
        WorkloadSpec::video(),
        WorkloadSpec::video(),
        WorkloadSpec::web(),
        WorkloadSpec::iot(),
    ]
}

/// The standard mix battery, in report order.
pub fn net_scenarios() -> Vec<NetScenario> {
    let build = |b: crate::scenario::NetScenarioBuilder| {
        b.build().expect("static battery scenarios are valid")
    };
    let sc = crate::scenario::NetScenarioBuilder::new;
    vec![
        build(
            sc("web_pair")
                .description("two web-browsing flows, mid-run beam fade")
                .workloads(web_pair)
                .events(mid_run_fade),
        ),
        build(
            sc("video_call")
                .description("56 kbit/s video + IoT telemetry, mid-run beam fade")
                .workloads(video_call)
                .events(mid_run_fade),
        ),
        build(
            sc("iot_swarm")
                .description("four bursty IoT telemetry flows, mid-run beam fade")
                .workloads(iot_swarm)
                .events(mid_run_fade),
        ),
        // No fault schedule: the cooperative channel is the point here.
        build(
            sc("bulk_vs_keepalive")
                .description("oversubscribed: 2x video + web vs IoT keepalives (DRR fairness)")
                .workloads(bulk_vs_keepalive),
        ),
    ]
}

/// One replicate of one scenario at one FEC mode.
#[derive(Clone, Debug)]
pub struct NetOutcome {
    /// The datagram-layer report.
    pub net: NetReport,
    /// Mean link goodput, bit/s (frame-level context for the mix).
    pub goodput_bps: f64,
}

fn net_config(seed: u64, plan: FaultPlan, fec: FecMode) -> LinkConfig {
    let mut cfg = LinkConfig::paper_static(CHAOS_DISTANCE_M, SchemeKind::Amppm, seed);
    cfg.duration = SimDuration::secs(NET_DURATION_S);
    cfg.faults = plan;
    cfg.fec = fec;
    cfg
}

/// Run one scenario replicate at one FEC mode.
pub fn run_net_scenario(scenario: &NetScenario, seed: u64, fec: FecMode) -> NetOutcome {
    obs::counter_add(obs::key!("sim.net.replicates"), 1);
    let (net, link) = run_net_over_link(
        net_config(seed, scenario.plan(), fec),
        NetConfig::default(),
        &scenario.workloads(),
        CHAOS_AMBIENT_LUX,
    )
    .expect("valid net scenario");
    NetOutcome {
        net,
        goodput_bps: link.mean_goodput_bps,
    }
}

/// Per-scenario aggregate over the replicates at one FEC mode.
#[derive(Clone, Debug)]
pub struct NetSummary {
    /// Scenario identifier.
    pub name: &'static str,
    /// Scenario description.
    pub description: &'static str,
    /// Datagrams offered / delivered / lost across replicates.
    pub offered_dgrams: u64,
    /// Datagrams reassembled.
    pub delivered_dgrams: u64,
    /// Datagrams known lost.
    pub lost_dgrams: u64,
    /// Application flows offered / fully completed.
    pub flows_offered: u64,
    /// Flows whose every datagram arrived.
    pub flows_completed: u64,
    /// Fraction of offered datagrams delivered.
    pub delivery_ratio: f64,
    /// Datagram latency percentiles (pooled across replicates), ms.
    pub latency_ms: Option<Percentiles>,
    /// Flow-completion-time percentiles (pooled), ms.
    pub fct_ms: Option<Percentiles>,
    /// Fragments rejected for an unknown wire version.
    pub bad_version: u64,
    /// Datagrams refused at a full transmit queue.
    pub queue_drops: u64,
    /// Partial datagrams evicted (timeout + overflow).
    pub evicted: u64,
    /// Mean link goodput across replicates, bit/s.
    pub mean_goodput_bps: f64,
    /// The raw per-replicate outcomes (replicate order).
    pub outcomes: Vec<NetOutcome>,
}

fn summarize_scenario(sc: &NetScenario, outcomes: Vec<NetOutcome>) -> NetSummary {
    let n = outcomes.len().max(1) as f64;
    let offered: u64 = outcomes.iter().map(|o| o.net.offered_dgrams).sum();
    let delivered: u64 = outcomes.iter().map(|o| o.net.delivered_dgrams).sum();
    // Pool raw samples across replicates (replicate order, then datagram
    // creation order — fully deterministic).
    let latency: Vec<f64> = outcomes
        .iter()
        .flat_map(|o| o.net.latency_ms.iter().copied())
        .collect();
    let fct: Vec<f64> = outcomes
        .iter()
        .flat_map(|o| o.net.fct_ms.iter().copied())
        .collect();
    NetSummary {
        name: sc.name,
        description: sc.description,
        offered_dgrams: offered,
        delivered_dgrams: delivered,
        lost_dgrams: outcomes.iter().map(|o| o.net.lost_dgrams).sum(),
        flows_offered: outcomes.iter().map(|o| o.net.flows_offered).sum(),
        flows_completed: outcomes.iter().map(|o| o.net.flows_completed).sum(),
        delivery_ratio: if offered == 0 {
            1.0
        } else {
            delivered as f64 / offered as f64
        },
        latency_ms: try_percentiles(&latency),
        fct_ms: try_percentiles(&fct),
        bad_version: outcomes.iter().map(|o| o.net.reassembly.bad_version).sum(),
        queue_drops: outcomes.iter().map(|o| o.net.queue_drops).sum(),
        evicted: outcomes
            .iter()
            .map(|o| o.net.reassembly.evicted_timeout + o.net.reassembly.evicted_overflow)
            .sum(),
        mean_goodput_bps: outcomes.iter().map(|o| o.goodput_bps).sum::<f64>() / n,
        outcomes,
    }
}

/// One scenario's FEC-off and FEC-on summaries, same seeds.
#[derive(Clone, Debug)]
pub struct NetFecComparison {
    /// The uncoded leg.
    pub off: NetSummary,
    /// The coded leg at [`NET_FEC_NOMINAL`], same seeds.
    pub on: NetSummary,
}

/// Run the whole battery twice per seed — FEC off and on — fanned out on
/// the deterministic runner.
pub fn run_net_suite_fec(replicates: usize, base_seed: u64) -> Vec<NetFecComparison> {
    let scenarios = net_scenarios();
    let grouped = par_sweep(
        &scenarios,
        replicates,
        base_seed,
        |sc: &NetScenario, id: TaskId| {
            (
                run_net_scenario(sc, id.seed, FecMode::Off),
                run_net_scenario(sc, id.seed, NET_FEC_NOMINAL),
            )
        },
    );
    scenarios
        .iter()
        .zip(grouped)
        .map(|(sc, pairs)| {
            let (offs, ons): (Vec<_>, Vec<_>) = pairs.into_iter().unzip();
            NetFecComparison {
                off: summarize_scenario(sc, offs),
                on: summarize_scenario(sc, ons),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_are_well_formed() {
        let scs = net_scenarios();
        assert!(scs.len() >= 3, "acceptance: at least 3 workload mixes");
        for sc in &scs {
            let w = sc.workloads();
            assert!(!w.is_empty() && w.len() <= 16, "{}", sc.name);
            for e in sc.plan().events() {
                assert!(
                    e.end() < SimTime::from_secs(NET_DURATION_S),
                    "{}: fault outlives the run",
                    sc.name
                );
            }
        }
    }

    #[test]
    fn mixes_deliver_and_measure() {
        for sc in &net_scenarios()[..2] {
            let o = run_net_scenario(sc, 42, FecMode::Off);
            assert!(o.net.delivered_dgrams > 0, "{}: {:?}", sc.name, o.net);
            assert!(o.net.flows_completed > 0, "{}: {:?}", sc.name, o.net);
            assert!(!o.net.latency_ms.is_empty(), "{}", sc.name);
            assert_eq!(o.net.reassembly.bad_version, 0, "{}", sc.name);
        }
    }

    #[test]
    fn drr_protects_keepalives_when_oversubscribed() {
        let scs = net_scenarios();
        let sc = scs.last().expect("battery is nonempty");
        assert_eq!(sc.name, "bulk_vs_keepalive");
        let o = run_net_scenario(sc, 7, FecMode::Off);
        // The mix oversubscribes the link: something must queue-drop or
        // end unfinished on the bulk flows...
        let bulk_struggle: u64 =
            o.net.per_flow[..3].iter().map(|f| f.lost).sum::<u64>() + o.net.unfinished_dgrams;
        assert!(bulk_struggle > 0, "{:?}", o.net);
        // ...while the IoT keepalive flow (index 3) still delivers the
        // lion's share of its datagrams.
        let iot = o.net.per_flow[3];
        assert!(
            iot.delivered * 10 >= iot.offered * 7,
            "keepalives starved: {iot:?} ({:?})",
            o.net.per_flow
        );
    }

    #[test]
    fn suite_is_deterministic_per_seed() {
        let sc = &net_scenarios()[1];
        let a = run_net_scenario(sc, 5, NET_FEC_NOMINAL);
        let b = run_net_scenario(sc, 5, NET_FEC_NOMINAL);
        assert_eq!(a.net.latency_ms, b.net.latency_ms);
        assert_eq!(a.net.fct_ms, b.net.fct_ms);
        assert_eq!(a.goodput_bps, b.goodput_bps);
    }

    #[test]
    fn fec_comparison_runs_both_legs() {
        let cmp = run_net_suite_fec(1, 9);
        assert_eq!(cmp.len(), net_scenarios().len());
        for c in &cmp {
            assert_eq!(c.off.name, c.on.name);
            assert!(c.off.offered_dgrams > 0, "{}", c.off.name);
            // Percentiles exist wherever anything was delivered.
            if c.off.delivered_dgrams > 0 {
                let p = c.off.latency_ms.expect("delivered but no percentiles");
                assert!(p.p50 <= p.p95 && p.p95 <= p.p99, "{p:?}");
            }
        }
    }
}
