//! Chaos-mode scenario runner: scheduled channel faults against the
//! self-healing link.
//!
//! Each [`ChaosScenario`] pairs a human-readable name with a deterministic
//! [`FaultPlan`] — ambient spikes, occlusion bursts, LED clock drift,
//! symbol slips, receiver saturation, flaky uplinks, and one
//! kitchen-sink combination. A scenario run executes the *same seed*
//! twice: once fault-free (the control) and once with the plan injected,
//! so "goodput retained" compares a link to its own unperturbed twin
//! rather than to a different random draw.
//!
//! The suite fans out on [`crate::runner::par_sweep`], so the whole
//! chaos report is bit-identical at any `SMARTVLC_THREADS` — a faulty
//! recovery path that only manifests under one interleaving cannot hide.

use crate::runner::{par_sweep, TaskId};
use desim::{SimDuration, SimTime};
use smartvlc_core::frame::format::FecMode;
use smartvlc_link::link::RecoveryReport;
use smartvlc_link::{LinkConfig, LinkReport, LinkSimulation, SchemeKind};
use smartvlc_obs as obs;
use vlc_channel::ambient::ConstantAmbient;
use vlc_channel::faults::{FaultEvent, FaultKind, FaultPlan};

/// Distance used by every chaos scenario: a comfortably healthy link, so
/// any damage in the report is the fault's doing.
pub const CHAOS_DISTANCE_M: f64 = 3.0;
/// Constant office ambient during chaos runs, lux.
pub const CHAOS_AMBIENT_LUX: f64 = 4000.0;
/// Wall-clock length of each chaos run, seconds.
pub const CHAOS_DURATION_S: u64 = 4;
/// Nominal outer-code profile for the fec-on leg of the battery. Medium
/// (t = 8 per codeword) rides out the battery's partial occlusions
/// without a ladder transient, while still leaving one parity rung for
/// the degradation ladder to climb before it has to touch the AMPPM
/// tier.
pub const CHAOS_FEC_NOMINAL: FecMode = FecMode::Medium;

/// A named, reproducible fault schedule.
#[derive(Clone, Debug)]
pub struct ChaosScenario {
    /// Stable identifier (also the JSON key in `BENCH_chaos.json`).
    pub name: &'static str,
    /// One-line description of what goes wrong.
    pub description: &'static str,
    /// Schedule builder — pure, so every replicate sees the same plan.
    /// Constructed through [`crate::scenario::ChaosScenarioBuilder`].
    pub(crate) events: fn() -> Vec<FaultEvent>,
}

impl ChaosScenario {
    /// The scenario's fault plan.
    pub fn plan(&self) -> FaultPlan {
        FaultPlan::new((self.events)())
    }
}

fn at_ms(ms: u64, dur_ms: u64, kind: FaultKind) -> FaultEvent {
    FaultEvent {
        at: SimTime::from_millis(ms),
        duration: SimDuration::millis(dur_ms),
        kind,
    }
}

fn ambient_spike_events() -> Vec<FaultEvent> {
    vec![
        // A step to near full-scale ambient (lights flicked on) …
        at_ms(1000, 800, FaultKind::AmbientStep { delta_lux: 4500.0 }),
        // … and a decaying glare impulse (camera flash / specular glint).
        at_ms(
            2600,
            400,
            FaultKind::AmbientImpulse {
                peak_lux: 6000.0,
                decay_s: 0.12,
            },
        ),
    ]
}

fn occlusion_burst_events() -> Vec<FaultEvent> {
    // A body clipping the edge of the beam: -5 dB for most of a second.
    // At the chaos operating point this puts the slot-error probability
    // near 1.4e-3 — a handful of slot errors in every frame, so each
    // uncoded CRC dies while the signal itself remains decodable. (The
    // original -17 dB full-body blockage is an information-theoretic
    // blackout no code can cross; it lives on in `deep_fade`.)
    vec![at_ms(1200, 800, FaultKind::Occlusion { gain: 0.32 })]
}

fn clock_drift_events() -> Vec<FaultEvent> {
    // LED driver clock running 400 ppm fast for two seconds: the
    // accumulated phase error surfaces as periodically inserted slots.
    vec![at_ms(800, 2000, FaultKind::ClockDrift { ppm: 400.0 })]
}

fn slip_storm_events() -> Vec<FaultEvent> {
    vec![
        at_ms(1000, 1, FaultKind::SymbolSlip { slots: 7 }),
        at_ms(1500, 1, FaultKind::SymbolSlip { slots: -5 }),
        at_ms(2000, 1, FaultKind::SymbolSlip { slots: 13 }),
        at_ms(2500, 1, FaultKind::SymbolSlip { slots: -11 }),
    ]
}

fn saturation_events() -> Vec<FaultEvent> {
    // Front end pinned at the ADC rail for 600 ms: total blackout, then
    // the receiver must resynchronize from cold.
    vec![at_ms(1500, 600, FaultKind::Saturation)]
}

fn uplink_flaky_events() -> Vec<FaultEvent> {
    vec![
        at_ms(1000, 2000, FaultKind::AckLoss { prob: 0.5 }),
        at_ms(1000, 2000, FaultKind::AckDup { prob: 0.3 }),
        at_ms(1000, 2000, FaultKind::AckJitter { extra_ms: 25.0 }),
    ]
}

fn deep_fade_events() -> Vec<FaultEvent> {
    // The worst case the outer code was built for: a glare spike and a
    // partial beam occlusion overlapping for over two seconds. Either
    // alone is survivable; combined they hold the slot-error probability
    // near 4e-3 for most of the run — every uncoded payload CRC in the
    // window fails (expected ~13 slot errors per frame), so ARQ-only
    // goodput collapses, while an escalated RS profile corrects the
    // damage in place. The -17 dB full blockage retired from
    // `occlusion_burst` reappears here as a short core inside the fade:
    // a stretch no code can cross, so recovery there must come from
    // resync + ARQ once the body moves on.
    vec![
        at_ms(700, 2600, FaultKind::AmbientStep { delta_lux: 200.0 }),
        at_ms(900, 2200, FaultKind::Occlusion { gain: 0.30 }),
        at_ms(1800, 300, FaultKind::Occlusion { gain: 0.02 }),
    ]
}

fn kitchen_sink_events() -> Vec<FaultEvent> {
    let mut ev = vec![
        at_ms(600, 600, FaultKind::AmbientStep { delta_lux: 3000.0 }),
        at_ms(1400, 500, FaultKind::Occlusion { gain: 0.05 }),
        at_ms(2100, 900, FaultKind::ClockDrift { ppm: 250.0 }),
        at_ms(2300, 1, FaultKind::SymbolSlip { slots: 9 }),
    ];
    ev.extend(uplink_flaky_events());
    ev
}

/// The standard scenario battery, in report order.
pub fn chaos_scenarios() -> Vec<ChaosScenario> {
    let sc = |name, description, events| {
        crate::scenario::ChaosScenarioBuilder::new(name)
            .description(description)
            .events(events)
            .build()
            .expect("static battery scenarios are valid")
    };
    vec![
        sc(
            "ambient_spike",
            "ambient step + decaying glare impulse",
            ambient_spike_events,
        ),
        sc(
            "occlusion_burst",
            "-5 dB partial beam occlusion for 800 ms",
            occlusion_burst_events,
        ),
        sc(
            "clock_drift",
            "LED clock 400 ppm fast for 2 s",
            clock_drift_events,
        ),
        sc(
            "slip_storm",
            "four discrete symbol slips, both signs",
            slip_storm_events,
        ),
        sc(
            "saturation",
            "receiver front end railed for 600 ms",
            saturation_events,
        ),
        sc(
            "uplink_flaky",
            "50% ACK loss + 30% dup + 25 ms jitter for 2 s",
            uplink_flaky_events,
        ),
        sc(
            "kitchen_sink",
            "everything above, overlapping",
            kitchen_sink_events,
        ),
        // Appended last so the per-task seed derivation of every scenario
        // above is untouched (seeds index by scenario position).
        sc(
            "deep_fade",
            "glare + partial occlusion overlapping, blackout core",
            deep_fade_events,
        ),
    ]
}

/// One replicate of one scenario: the faulted run and its same-seed
/// fault-free control.
#[derive(Clone, Debug)]
pub struct ChaosOutcome {
    /// Goodput of the faulted run, bit/s.
    pub goodput_bps: f64,
    /// Goodput of the fault-free control at the same seed, bit/s.
    pub baseline_goodput_bps: f64,
    /// `goodput / baseline` (1.0 when the control moved no data either).
    pub goodput_retained: f64,
    /// Frames delivered only after ≥ 1 retransmission.
    pub late_deliveries: u64,
    /// Frames abandoned after the retry budget ("lost").
    pub frames_lost: u64,
    /// Self-healing metrics of the faulted run.
    pub recovery: RecoveryReport,
}

fn chaos_config(seed: u64, plan: FaultPlan, fec: FecMode) -> LinkConfig {
    let mut cfg = LinkConfig::paper_static(CHAOS_DISTANCE_M, SchemeKind::Amppm, seed);
    cfg.duration = SimDuration::secs(CHAOS_DURATION_S);
    cfg.faults = plan;
    cfg.fec = fec;
    cfg
}

fn run_once(seed: u64, plan: FaultPlan, fec: FecMode) -> LinkReport {
    let mut sim = LinkSimulation::new(chaos_config(seed, plan, fec)).expect("valid chaos scenario");
    sim.run(&mut ConstantAmbient {
        lux: CHAOS_AMBIENT_LUX,
    })
}

/// Run one scenario replicate: faulted + control, both from `seed`.
///
/// This is the ARQ-only (FEC off) battery — the legacy report, preserved
/// bit-for-bit. For the coded leg see [`run_chaos_scenario_fec`].
pub fn run_chaos_scenario(scenario: &ChaosScenario, seed: u64) -> ChaosOutcome {
    run_chaos_scenario_fec(scenario, seed, FecMode::Off)
}

/// Run one scenario replicate with a nominal outer-code profile. Both the
/// faulted run and its same-seed control carry the *same* `fec`, so
/// "goodput retained" still compares a link to its own unperturbed twin:
/// the parity airtime tax cancels out and the ratio isolates what the
/// faults destroyed.
pub fn run_chaos_scenario_fec(scenario: &ChaosScenario, seed: u64, fec: FecMode) -> ChaosOutcome {
    obs::counter_add(obs::key!("sim.chaos.replicates"), 1);
    let faulted = run_once(seed, scenario.plan(), fec);
    let control = run_once(seed, FaultPlan::default(), fec);
    let goodput_retained = if control.mean_goodput_bps <= 0.0 {
        1.0
    } else {
        faulted.mean_goodput_bps / control.mean_goodput_bps
    };
    ChaosOutcome {
        goodput_bps: faulted.mean_goodput_bps,
        baseline_goodput_bps: control.mean_goodput_bps,
        goodput_retained,
        late_deliveries: faulted.recovery.late_deliveries,
        frames_lost: faulted.recovery.frames_abandoned,
        recovery: faulted.recovery,
    }
}

/// Per-scenario aggregate over the replicates.
#[derive(Clone, Debug)]
pub struct ChaosSummary {
    /// Scenario identifier.
    pub name: &'static str,
    /// Scenario description.
    pub description: &'static str,
    /// Mean goodput retained vs the same-seed control.
    pub mean_goodput_retained: f64,
    /// Worst replicate's goodput retained.
    pub min_goodput_retained: f64,
    /// Mean faulted goodput, bit/s.
    pub mean_goodput_bps: f64,
    /// Mean time from the last downlink fault clearing to the first
    /// clean frame, seconds — over replicates that have one.
    pub mean_resync_s: Option<f64>,
    /// Total late deliveries across replicates.
    pub late_deliveries: u64,
    /// Total frames abandoned across replicates.
    pub frames_lost: u64,
    /// Total receiver sync losses across replicates.
    pub sync_losses: u64,
    /// Total resync-budget overruns across replicates.
    pub resync_overruns: u64,
    /// Highest degradation tier any replicate reached.
    pub max_degrade_tier: u8,
    /// Total FEC symbols corrected in place across replicates (faulted
    /// runs only). Zero whenever the battery runs with FEC off.
    pub fec_corrected_symbols: u64,
    /// Total frames whose FEC decode failed (fell through to CRC+ARQ).
    pub fec_decode_failures: u64,
    /// Mean parity airtime overhead (coded/data − 1) across replicates.
    pub mean_fec_overhead: f64,
    /// The raw per-replicate outcomes (replicate order).
    pub outcomes: Vec<ChaosOutcome>,
}

/// Run the whole battery: `replicates` seeds per scenario, fanned out on
/// the deterministic runner.
pub fn run_chaos_suite(replicates: usize, base_seed: u64) -> Vec<ChaosSummary> {
    let scenarios = chaos_scenarios();
    let grouped = par_sweep(
        &scenarios,
        replicates,
        base_seed,
        |sc: &ChaosScenario, id: TaskId| run_chaos_scenario(sc, id.seed),
    );
    scenarios
        .into_iter()
        .zip(grouped)
        .map(|(sc, outcomes)| summarize_scenario(sc, outcomes))
        .collect()
}

fn summarize_scenario(sc: ChaosScenario, outcomes: Vec<ChaosOutcome>) -> ChaosSummary {
    let n = outcomes.len().max(1) as f64;
    let mean_goodput_retained = outcomes.iter().map(|o| o.goodput_retained).sum::<f64>() / n;
    let min_goodput_retained = outcomes
        .iter()
        .map(|o| o.goodput_retained)
        .fold(f64::INFINITY, f64::min)
        .min(1.0 + f64::EPSILON);
    let mean_goodput_bps = outcomes.iter().map(|o| o.goodput_bps).sum::<f64>() / n;
    let resyncs: Vec<f64> = outcomes
        .iter()
        .filter_map(|o| o.recovery.resync_time_s)
        .collect();
    let mean_resync_s = if resyncs.is_empty() {
        None
    } else {
        Some(resyncs.iter().sum::<f64>() / resyncs.len() as f64)
    };
    ChaosSummary {
        name: sc.name,
        description: sc.description,
        mean_goodput_retained,
        min_goodput_retained,
        mean_goodput_bps,
        mean_resync_s,
        late_deliveries: outcomes.iter().map(|o| o.late_deliveries).sum(),
        frames_lost: outcomes.iter().map(|o| o.frames_lost).sum(),
        sync_losses: outcomes.iter().map(|o| o.recovery.sync_losses).sum(),
        resync_overruns: outcomes.iter().map(|o| o.recovery.resync_overruns).sum(),
        max_degrade_tier: outcomes
            .iter()
            .map(|o| o.recovery.max_degrade_tier)
            .max()
            .unwrap_or(0),
        fec_corrected_symbols: outcomes
            .iter()
            .map(|o| o.recovery.fec_corrected_symbols)
            .sum(),
        fec_decode_failures: outcomes
            .iter()
            .map(|o| o.recovery.fec_decode_failures)
            .sum(),
        mean_fec_overhead: outcomes
            .iter()
            .map(|o| o.recovery.fec_overhead_ratio)
            .sum::<f64>()
            / n,
        outcomes,
    }
}

/// One scenario's ARQ-only and FEC-on summaries, same seeds.
#[derive(Clone, Debug)]
pub struct ChaosFecComparison {
    /// The ARQ-only leg (identical to [`run_chaos_suite`]'s summary).
    pub off: ChaosSummary,
    /// The coded leg at [`CHAOS_FEC_NOMINAL`], same seeds.
    pub on: ChaosSummary,
}

impl ChaosFecComparison {
    /// How much goodput-retained the outer code buys on this scenario.
    pub fn goodput_retained_delta(&self) -> f64 {
        self.on.mean_goodput_retained - self.off.mean_goodput_retained
    }
}

/// Run the whole battery twice per seed — FEC off and FEC on — so every
/// scenario reports what the outer code buys under identical faults.
///
/// The off leg of each task is byte-identical to [`run_chaos_suite`] at
/// the same `(replicates, base_seed)`: the seed derivation is shared and
/// the extra coded run draws from its own simulation RNG.
pub fn run_chaos_suite_fec(replicates: usize, base_seed: u64) -> Vec<ChaosFecComparison> {
    let scenarios = chaos_scenarios();
    let grouped = par_sweep(
        &scenarios,
        replicates,
        base_seed,
        |sc: &ChaosScenario, id: TaskId| {
            (
                run_chaos_scenario_fec(sc, id.seed, FecMode::Off),
                run_chaos_scenario_fec(sc, id.seed, CHAOS_FEC_NOMINAL),
            )
        },
    );
    scenarios
        .into_iter()
        .zip(grouped)
        .map(|(sc, pairs)| {
            let (offs, ons): (Vec<_>, Vec<_>) = pairs.into_iter().unzip();
            ChaosFecComparison {
                off: summarize_scenario(sc.clone(), offs),
                on: summarize_scenario(sc, ons),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_plans_are_valid_and_nonempty() {
        for sc in chaos_scenarios() {
            assert!(!sc.plan().is_empty(), "{}", sc.name);
            // Every fault clears before the run ends (so recovery is
            // observable).
            let end = sc.plan().events().iter().map(|e| e.end()).max().unwrap();
            assert!(
                end < SimTime::from_secs(CHAOS_DURATION_S),
                "{}: fault outlives the run",
                sc.name
            );
        }
    }

    #[test]
    fn ambient_spike_retains_half_goodput() {
        // The acceptance bar for the standard scenario: ≥ 50% of the
        // fault-free goodput survives the spikes.
        let o = run_chaos_scenario(&chaos_scenarios()[0], 42);
        assert!(o.baseline_goodput_bps > 0.0, "{o:?}");
        assert!(o.goodput_retained >= 0.5, "{o:?}");
    }

    #[test]
    fn occlusion_recovers_within_bound() {
        let sc = &chaos_scenarios()[1];
        let o = run_chaos_scenario(sc, 7);
        // The link must come back after the blockage clears, within a
        // bounded interval (a second of wall clock ≈ a handful of frames).
        let resync = o.recovery.resync_time_s.expect("link never recovered");
        assert!(resync <= 1.0, "resync took {resync} s: {o:?}");
        assert!(o.goodput_bps > 0.0, "{o:?}");
    }

    #[test]
    fn slip_storm_recovers_within_bound() {
        let sc = &chaos_scenarios()[3];
        let o = run_chaos_scenario(sc, 11);
        let resync = o.recovery.resync_time_s.expect("link never recovered");
        assert!(resync <= 1.0, "resync took {resync} s: {o:?}");
    }

    #[test]
    fn every_scenario_completes_without_panic_and_moves_data() {
        // "Never panics" is the whole point: a chaos run that unwinds
        // fails this test. Each scenario must also still deliver
        // *something* — the link degrades, it does not die.
        for sc in chaos_scenarios() {
            let o = run_chaos_scenario(&sc, 3);
            assert!(
                o.goodput_bps > 0.0,
                "{}: link died entirely: {o:?}",
                sc.name
            );
        }
    }

    #[test]
    fn fec_recovers_half_the_occlusion_gap() {
        // The PR's acceptance bar: with the outer code on, goodput
        // retained under the occlusion burst must close at least half
        // the gap between ARQ-only and the fault-free control.
        let sc = &chaos_scenarios()[1];
        for seed in [7u64, 42] {
            let off = run_chaos_scenario_fec(sc, seed, FecMode::Off);
            let on = run_chaos_scenario_fec(sc, seed, CHAOS_FEC_NOMINAL);
            let gate = (off.goodput_retained + 1.0) / 2.0;
            assert!(
                on.goodput_retained >= gate,
                "seed {seed}: fec-on retained {:.4} < gate {:.4} (off {:.4})",
                on.goodput_retained,
                gate,
                off.goodput_retained
            );
            // The improvement must come from in-place correction, not a
            // lucky draw.
            assert!(on.recovery.fec_corrected_symbols > 0, "{on:?}");
        }
    }

    #[test]
    fn deep_fade_collapses_arq_only_but_fec_still_helps() {
        let scs = chaos_scenarios();
        let sc = scs.last().expect("battery is nonempty");
        assert_eq!(sc.name, "deep_fade", "deep_fade must stay appended last");
        let off = run_chaos_scenario_fec(sc, 3, FecMode::Off);
        let on = run_chaos_scenario_fec(sc, 3, CHAOS_FEC_NOMINAL);
        // ARQ-only collapses: the fade eats more than a third of the
        // fault-free goodput despite unlimited round trips.
        assert!(
            off.goodput_retained < 0.6,
            "deep_fade no longer collapses ARQ-only: {off:?}"
        );
        // The outer code claws some of it back under identical faults —
        // bounded by the uncoded header, which no payload code can save.
        assert!(
            on.goodput_retained >= off.goodput_retained + 0.02,
            "fec-on {:.4} does not beat arq-only {:.4}",
            on.goodput_retained,
            off.goodput_retained
        );
        assert!(on.recovery.fec_corrected_symbols > 0, "{on:?}");
        // The blackout core is beyond any code: frames still die there.
        assert!(on.frames_lost > 0 || on.late_deliveries > 0, "{on:?}");
    }

    #[test]
    fn fec_comparison_suite_reports_both_legs() {
        let cmp = run_chaos_suite_fec(1, 9);
        assert_eq!(cmp.len(), chaos_scenarios().len());
        for c in &cmp {
            assert_eq!(c.off.name, c.on.name);
            // The off leg never touches the decoder.
            assert_eq!(c.off.fec_corrected_symbols, 0, "{}", c.off.name);
            assert_eq!(c.off.fec_decode_failures, 0, "{}", c.off.name);
            assert_eq!(c.off.mean_fec_overhead, 0.0, "{}", c.off.name);
        }
        // And the off leg is exactly what the legacy suite reports.
        let legacy = run_chaos_suite(1, 9);
        for (c, l) in cmp.iter().zip(&legacy) {
            assert_eq!(c.off.mean_goodput_retained, l.mean_goodput_retained);
            assert_eq!(c.off.mean_goodput_bps, l.mean_goodput_bps);
        }
    }

    #[test]
    fn fec_runs_are_deterministic_per_seed() {
        let sc = &chaos_scenarios()[1];
        let a = run_chaos_scenario_fec(sc, 5, CHAOS_FEC_NOMINAL);
        let b = run_chaos_scenario_fec(sc, 5, CHAOS_FEC_NOMINAL);
        assert_eq!(a.goodput_bps, b.goodput_bps);
        assert_eq!(a.recovery, b.recovery);
    }

    #[test]
    fn suite_is_deterministic_per_seed() {
        let a = run_chaos_scenario(&chaos_scenarios()[4], 5);
        let b = run_chaos_scenario(&chaos_scenarios()[4], 5);
        assert_eq!(a.goodput_bps, b.goodput_bps);
        assert_eq!(a.recovery, b.recovery);
    }
}
