//! Deterministic parallel experiment runner.
//!
//! Every figure in the paper is a sweep: a grid of experiment points
//! (dimming level, distance, incidence angle, seat, …), each simulated
//! independently, often replicated across seeds. The points share nothing
//! but read-only configuration — the ideal fan-out — yet the figure
//! generators ran them serially. This module is the work pool they fan
//! out on, with one hard guarantee:
//!
//! > **Results are bit-identical at any thread count.**
//!
//! Three design rules deliver that:
//!
//! 1. **Keyed RNG streams.** A task never samples from a pool-wide RNG
//!    (whose interleaving would depend on scheduling). Each `(point_id,
//!    seed)` tuple derives its own [`desim::DetRng`] stream via
//!    [`task_rng`] — fork-by-label then fork-by-index, exactly the
//!    scheme the simulator itself uses for per-component streams — so a
//!    task's randomness is a pure function of its identity.
//! 2. **Submission-order collection.** Workers pull tasks from an atomic
//!    cursor (dynamic load balancing — sweep points have wildly uneven
//!    cost near cliff edges), but results are reassembled by task index
//!    before being returned.
//! 3. **No shared mutable simulation state.** Tasks receive `&` borrows
//!    only; the binomial table and planner caches the tasks touch are
//!    the `Arc`-shared read-mostly structures from `combinat` and
//!    `smartvlc-core`.
//!
//! Thread count comes from `SMARTVLC_THREADS` (or the machine's available
//! parallelism), and `SMARTVLC_THREADS=1` degenerates to exactly the old
//! serial loop — same results, same order.

use crate::stats_util::{try_summarize, Summary};
use desim::DetRng;
use smartvlc_obs as obs;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Parses a raw `SMARTVLC_THREADS` value into a worker count.
///
/// Leading/trailing whitespace is tolerated; anything else that is not a
/// positive decimal integer (`abc`, `0x8`, `-3`, empty, `0`) is rejected
/// with an error naming the offending value — a typo must fail loudly, not
/// silently serialize every sweep.
pub fn parse_thread_count(raw: &str) -> Result<usize, String> {
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Err(
            "SMARTVLC_THREADS is set but empty/whitespace; expected a positive decimal integer"
                .to_string(),
        );
    }
    match trimmed.parse::<usize>() {
        Ok(0) => Err(format!(
            "SMARTVLC_THREADS={trimmed:?} is zero; expected a positive decimal integer"
        )),
        Ok(n) => Ok(n),
        Err(_) => Err(format!(
            "SMARTVLC_THREADS={trimmed:?} is not a positive decimal integer \
             (hex like \"0x8\" is not accepted)"
        )),
    }
}

/// Worker threads to use: `SMARTVLC_THREADS` if set, otherwise the
/// machine's available parallelism.
///
/// # Panics
///
/// Panics with a message naming the bad value if `SMARTVLC_THREADS` is set
/// but is not a positive decimal integer (see [`parse_thread_count`]).
pub fn thread_count() -> usize {
    match std::env::var("SMARTVLC_THREADS") {
        Ok(v) => match parse_thread_count(&v) {
            Ok(n) => n,
            Err(msg) => panic!("{msg}"),
        },
        Err(_) => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// The deterministic RNG stream for task `(point_id, seed)`.
///
/// Streams for distinct tuples are independent (distinct xoshiro states
/// reached through splitmix-seeded label/index forks), and the mapping is
/// stable across thread counts, platforms, and releases — it is part of
/// the reproducibility contract.
pub fn task_rng(seed: u64, point_id: u64) -> DetRng {
    DetRng::seed_from_u64(seed)
        .fork("runner")
        .fork_idx(point_id)
}

/// A `u64` seed derived from `(point_id, seed)` — for experiment entry
/// points that take a seed rather than a [`DetRng`] (they fork their own
/// streams internally from it).
pub fn task_seed(seed: u64, point_id: u64) -> u64 {
    task_rng(seed, point_id).next_u64()
}

/// Parallel order-preserving map: run `f(index, &points[index])` for every
/// point on the work pool and return the results in submission order.
///
/// `f` is called at most once per point, from an unspecified thread, in an
/// unspecified order; the *returned vector* is always in point order. With
/// one worker this is exactly `points.iter().enumerate().map(..)`.
pub fn par_map<P, R, F>(points: &[P], f: F) -> Vec<R>
where
    P: Sync,
    R: Send,
    F: Fn(usize, &P) -> R + Sync,
{
    /// One task's result plus the child recorder its telemetry went into.
    type TaskOutput<R> = (R, Option<obs::Recorder>);

    // Telemetry determinism: if the calling thread has a recorder in scope,
    // each task records into its own child recorder, and children are merged
    // into the parent in submission (task-index) order — never into a shared
    // registry from racing workers. The serial and parallel paths therefore
    // produce identical merged telemetry.
    let parent = obs::current_recorder();
    let run_task = |i: usize, p: &P| -> TaskOutput<R> {
        if parent.is_some() {
            let child = obs::Recorder::new();
            let r = obs::with_recorder(&child, || {
                obs::counter_add(obs::key!("sim.runner.tasks"), 1);
                f(i, p)
            });
            (r, Some(child))
        } else {
            (f(i, p), None)
        }
    };
    let merge = |parent: &Option<obs::Recorder>, child: Option<obs::Recorder>| {
        if let (Some(parent), Some(child)) = (parent.as_ref(), child) {
            parent.merge_in(&child);
        }
    };

    let threads = thread_count().min(points.len().max(1));
    if threads <= 1 {
        return points
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let (r, child) = run_task(i, p);
                merge(&parent, child);
                r
            })
            .collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut per_worker: Vec<Vec<(usize, TaskOutput<R>)>> = crossbeam::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|_| {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= points.len() {
                            break;
                        }
                        local.push((i, run_task(i, &points[i])));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("runner worker panicked"))
            .collect()
    })
    .expect("runner scope panicked");

    // Reassemble in submission order; merge telemetry in the same order.
    let mut tagged: Vec<(usize, TaskOutput<R>)> = per_worker.drain(..).flatten().collect();
    tagged.sort_by_key(|&(i, _)| i);
    debug_assert_eq!(tagged.len(), points.len());
    tagged
        .into_iter()
        .map(|(_, (r, child))| {
            merge(&parent, child);
            r
        })
        .collect()
}

/// One cell of a sweep × seed fan-out: which point, which replicate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaskId {
    /// Index of the sweep point.
    pub point: usize,
    /// Index of the replicate.
    pub replicate: usize,
    /// The derived per-task seed (stable across thread counts).
    pub seed: u64,
}

/// Fan a sweep out over `(point × replicate)` tasks and collect the raw
/// per-task results grouped by point (inner vectors in replicate order).
///
/// `f` receives the point, the task id, and the task's derived seed via
/// `id.seed` — it must not consume randomness from anywhere else.
pub fn par_sweep<P, R, F>(points: &[P], replicates: usize, base_seed: u64, f: F) -> Vec<Vec<R>>
where
    P: Sync,
    R: Send,
    F: Fn(&P, TaskId) -> R + Sync,
{
    let tasks: Vec<TaskId> = (0..points.len())
        .flat_map(|point| {
            (0..replicates).map(move |replicate| TaskId {
                point,
                replicate,
                // One keyed stream per (point, replicate) cell.
                seed: task_seed(base_seed, (point * replicates + replicate) as u64),
            })
        })
        .collect();
    let flat = par_map(&tasks, |_, &id| f(&points[id.point], id));
    let mut grouped: Vec<Vec<R>> = (0..points.len()).map(|_| Vec::new()).collect();
    for (id, r) in tasks.iter().zip(flat) {
        grouped[id.point].push(r);
    }
    grouped
}

/// [`par_sweep`] for scalar measurements: returns a per-point
/// mean ± CI [`Summary`] over the replicates.
pub fn par_sweep_summaries<P, F>(
    points: &[P],
    replicates: usize,
    base_seed: u64,
    f: F,
) -> Vec<Summary>
where
    P: Sync,
    F: Fn(&P, TaskId) -> f64 + Sync,
{
    par_sweep(points, replicates, base_seed, f)
        .iter()
        .map(|samples| try_summarize(samples).expect("replicates >= 1"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Run `f` with `SMARTVLC_THREADS` pinned to the raw string `raw`,
    /// serializing access to the process-global env var across the test
    /// binary.
    fn with_threads_raw<R>(raw: &str, f: impl FnOnce() -> R) -> R {
        static ENV_LOCK: Mutex<()> = Mutex::new(());
        let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let old = std::env::var("SMARTVLC_THREADS").ok();
        std::env::set_var("SMARTVLC_THREADS", raw);
        let out = f();
        match old {
            Some(v) => std::env::set_var("SMARTVLC_THREADS", v),
            None => std::env::remove_var("SMARTVLC_THREADS"),
        }
        out
    }

    /// Run `f` with `SMARTVLC_THREADS` pinned to `n`.
    fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
        with_threads_raw(&n.to_string(), f)
    }

    #[test]
    fn par_map_preserves_order() {
        let points: Vec<u64> = (0..100).collect();
        for threads in [1, 2, 8] {
            let out = with_threads(threads, || par_map(&points, |i, &p| (i as u64) * 1000 + p));
            let expect: Vec<u64> = (0..100).map(|i| i * 1000 + i).collect();
            assert_eq!(out, expect, "threads={threads}");
        }
    }

    #[test]
    fn par_map_is_thread_count_invariant() {
        // A task that consumes its keyed stream: any scheduling
        // difference would surface as different outputs.
        let points: Vec<usize> = (0..40).collect();
        let run = |threads: usize| {
            with_threads(threads, || {
                par_map(&points, |i, _| {
                    let mut rng = task_rng(42, i as u64);
                    (0..50).map(|_| rng.next_u64() >> 32).sum::<u64>()
                })
            })
        };
        let serial = run(1);
        assert_eq!(run(2), serial);
        assert_eq!(run(8), serial);
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |_, &x| x).is_empty());
        assert_eq!(par_map(&[7u32], |_, &x| x * 2), vec![14]);
    }

    #[test]
    fn task_streams_are_distinct() {
        // First draws of many (seed, point) streams must not collide —
        // colliding streams would silently correlate replicates.
        let mut seen = std::collections::HashSet::new();
        for seed in 0..20u64 {
            for point in 0..50u64 {
                assert!(
                    seen.insert(task_rng(seed, point).next_u64()),
                    "stream collision at seed={seed} point={point}"
                );
            }
        }
    }

    #[test]
    fn par_sweep_groups_by_point() {
        let points = [10.0f64, 20.0, 30.0];
        let grouped = with_threads(4, || {
            par_sweep(&points, 3, 1, |&p, id| p + id.replicate as f64)
        });
        assert_eq!(grouped.len(), 3);
        assert_eq!(grouped[0], vec![10.0, 11.0, 12.0]);
        assert_eq!(grouped[2], vec![30.0, 31.0, 32.0]);
    }

    #[test]
    fn par_sweep_summaries_aggregate() {
        let points = [100.0f64, 200.0];
        let sums = par_sweep_summaries(&points, 4, 9, |&p, id| p + id.replicate as f64);
        assert_eq!(sums.len(), 2);
        assert_eq!(sums[0].n, 4);
        assert!((sums[0].mean - 101.5).abs() < 1e-12);
        assert!((sums[1].mean - 201.5).abs() < 1e-12);
    }

    #[test]
    fn sweep_cell_seeds_are_stable_and_distinct() {
        let a = with_threads(1, || par_sweep(&[0u8; 5], 7, 3, |_, id| id.seed));
        let b = with_threads(8, || par_sweep(&[0u8; 5], 7, 3, |_, id| id.seed));
        assert_eq!(a, b, "cell seeds must not depend on thread count");
        let flat: Vec<u64> = a.into_iter().flatten().collect();
        let set: std::collections::HashSet<u64> = flat.iter().copied().collect();
        assert_eq!(set.len(), flat.len(), "cell seeds must be distinct");
    }

    #[test]
    fn thread_count_respects_env() {
        assert_eq!(with_threads(3, thread_count), 3);
        assert_eq!(with_threads(1, thread_count), 1);
        // Surrounding whitespace around a valid integer is tolerated.
        assert_eq!(with_threads_raw("  4 ", thread_count), 4);
        assert!(thread_count() >= 1);
    }

    #[test]
    fn parse_thread_count_accepts_positive_integers() {
        assert_eq!(parse_thread_count("1"), Ok(1));
        assert_eq!(parse_thread_count("8"), Ok(8));
        assert_eq!(parse_thread_count(" 16\n"), Ok(16));
    }

    #[test]
    fn parse_thread_count_rejects_invalid_empty_and_whitespace() {
        for bad in ["abc", "0x8", "-3", "1.5", "8 workers", "0", "", "   ", "\t"] {
            let err = parse_thread_count(bad)
                .expect_err(&format!("value {bad:?} must be rejected, not mapped to 1"));
            assert!(
                err.contains("SMARTVLC_THREADS"),
                "error names the variable: {err}"
            );
            let trimmed = bad.trim();
            if !trimmed.is_empty() {
                assert!(
                    err.contains(trimmed),
                    "error names the bad value {trimmed:?}: {err}"
                );
            }
        }
    }

    #[test]
    fn thread_count_panics_on_invalid_env() {
        for bad in ["abc", "0x8", "0", ""] {
            let caught = with_threads_raw(bad, || std::panic::catch_unwind(thread_count));
            let payload = caught.expect_err(&format!("SMARTVLC_THREADS={bad:?} must panic"));
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_default();
            assert!(
                msg.contains("SMARTVLC_THREADS"),
                "panic names the variable: {msg}"
            );
        }
    }

    #[test]
    fn par_map_merges_task_telemetry_in_submission_order() {
        let points: Vec<u64> = (0..24).collect();
        let run = |threads: usize| {
            with_threads(threads, || {
                let rec = obs::Recorder::new();
                let out = obs::with_recorder(&rec, || {
                    par_map(&points, |i, &p| {
                        obs::counter_add(obs::key!("test.runner.work"), p + 1);
                        obs::event(
                            desim::SimTime::from_nanos(p * 10),
                            obs::key!("test.runner.ev"),
                            i as u64,
                        );
                        p
                    })
                });
                (out, rec.snapshot())
            })
        };
        let (out1, snap1) = run(1);
        let (out8, snap8) = run(8);
        assert_eq!(out1, out8);
        assert_eq!(snap1, snap8, "telemetry must not depend on thread count");
        assert_eq!(snap1.to_json(), snap8.to_json());
        #[cfg(feature = "telemetry")]
        {
            assert!(snap1
                .counters
                .contains(&("sim.runner.tasks".to_string(), 24)));
            assert!(snap1
                .counters
                .contains(&("test.runner.work".to_string(), (1..=24).sum::<u64>())));
            // Events arrive in submission order even at 8 threads.
            let order: Vec<u64> = snap8.events.iter().map(|e| e.value).collect();
            assert_eq!(order, (0..24).collect::<Vec<u64>>());
        }
    }
}
