//! The runner's reproducibility contract, checked end-to-end: every
//! experiment that fans out on the work pool must produce **bit-identical**
//! results at any `SMARTVLC_THREADS`.
//!
//! These tests run real simulations (short durations) at 1, 2, and 8
//! threads and compare the outputs at the f64 *bit* level — not within an
//! epsilon. Scheduling may reorder execution; it must never reorder or
//! perturb results.

use desim::SimDuration;
use proptest::prelude::*;
use smartvlc_link::SchemeKind;
use smartvlc_sim::static_run::{run_distance_matrix, run_scheme_matrix};
use smartvlc_sim::{par_sweep, run_broadcast, task_rng, Seat};
use std::sync::Mutex;

/// Serialize env mutation across the test binary's threads.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_env<R>(threads: usize, opcache: Option<&str>, f: impl FnOnce() -> R) -> R {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let old_threads = std::env::var("SMARTVLC_THREADS").ok();
    let old_opcache = std::env::var("SMARTVLC_OPCACHE").ok();
    std::env::set_var("SMARTVLC_THREADS", threads.to_string());
    match opcache {
        Some(v) => std::env::set_var("SMARTVLC_OPCACHE", v),
        None => std::env::remove_var("SMARTVLC_OPCACHE"),
    }
    let out = f();
    match old_threads {
        Some(v) => std::env::set_var("SMARTVLC_THREADS", v),
        None => std::env::remove_var("SMARTVLC_THREADS"),
    }
    match old_opcache {
        Some(v) => std::env::set_var("SMARTVLC_OPCACHE", v),
        None => std::env::remove_var("SMARTVLC_OPCACHE"),
    }
    out
}

fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    with_env(n, None, f)
}

/// A sweep result reduced to exact bits, so equality is byte equality.
fn fingerprint(sweeps: &[Vec<smartvlc_sim::StaticPoint>]) -> Vec<(u64, u64, u64)> {
    sweeps
        .iter()
        .flatten()
        .map(|p| {
            (
                p.dimming.to_bits(),
                p.goodput_bps.to_bits(),
                p.fer.to_bits(),
            )
        })
        .collect()
}

#[test]
fn scheme_matrix_is_bit_identical_across_thread_counts() {
    let schemes = [SchemeKind::Amppm, SchemeKind::OokCt];
    let levels = [0.15, 0.5, 0.8];
    let dur = SimDuration::millis(200);
    let run = |n| {
        with_threads(n, || {
            fingerprint(&run_scheme_matrix(&schemes, &levels, dur, 15))
        })
    };
    let serial = run(1);
    assert_eq!(run(2), serial, "2 threads diverged from serial");
    assert_eq!(run(8), serial, "8 threads diverged from serial");
}

#[test]
fn distance_matrix_is_bit_identical_across_thread_counts() {
    let levels = [0.5];
    let distances = [1.0, 3.0, 4.5];
    let dur = SimDuration::millis(200);
    let run = |n| {
        with_threads(n, || {
            fingerprint(&run_distance_matrix(
                SchemeKind::Amppm,
                &levels,
                &distances,
                dur,
                16,
            ))
        })
    };
    let serial = run(1);
    assert_eq!(run(2), serial);
    assert_eq!(run(8), serial);
}

#[test]
fn broadcast_is_bit_identical_across_thread_counts() {
    let seats = [
        Seat {
            distance_m: 1.5,
            off_axis_deg: 0.0,
        },
        Seat {
            distance_m: 3.0,
            off_axis_deg: 5.0,
        },
        Seat {
            distance_m: 5.0,
            off_axis_deg: 0.0,
        },
    ];
    let dur = SimDuration::millis(200);
    let run = |n: usize| {
        with_threads(n, || {
            run_broadcast(0.5, &seats, dur, 7)
                .iter()
                .map(|r| (r.frames_ok, r.frames_bad, r.goodput_bps.to_bits()))
                .collect::<Vec<_>>()
        })
    };
    let serial = run(1);
    assert_eq!(run(2), serial);
    assert_eq!(run(8), serial);
}

#[test]
fn sweep_replicates_are_bit_identical_across_thread_counts() {
    // par_sweep with RNG-consuming tasks: the derived per-cell seed (and
    // everything downstream of it) must not depend on scheduling.
    let points = [0u8; 6];
    let run = |n: usize| {
        with_threads(n, || {
            par_sweep(&points, 4, 99, |_, id| {
                let mut rng = task_rng(id.seed, 0);
                (0..100)
                    .map(|_| rng.next_u64())
                    .fold(0u64, u64::wrapping_add)
            })
        })
    };
    let serial = run(1);
    assert_eq!(run(2), serial);
    assert_eq!(run(8), serial);
}

#[test]
fn chaos_suite_is_bit_identical_across_thread_counts() {
    // The chaos battery exercises every self-healing path (sync loss,
    // degradation tiers, ACK impairments); any hidden scheduling
    // dependence in those paths would surface here as diverging bits.
    let run = |n: usize| {
        with_threads(n, || {
            smartvlc_sim::run_chaos_suite(2, 1234)
                .iter()
                .flat_map(|s| {
                    s.outcomes.iter().map(|o| {
                        (
                            o.goodput_bps.to_bits(),
                            o.baseline_goodput_bps.to_bits(),
                            o.recovery.sync_losses,
                            o.recovery.late_deliveries,
                            o.recovery.frames_abandoned,
                            o.recovery.max_degrade_tier,
                        )
                    })
                })
                .collect::<Vec<_>>()
        })
    };
    let serial = run(1);
    assert_eq!(run(2), serial, "2 threads diverged from serial");
    assert_eq!(run(8), serial, "8 threads diverged from serial");
}

#[test]
fn chaos_telemetry_snapshot_is_byte_identical_across_thread_counts() {
    // The tentpole property: a telemetry snapshot (counters, gauges,
    // histograms, journal) serializes to the same bytes at any thread
    // count, because per-task recorders are merged in submission order.
    use smartvlc_obs as obs;
    let run = |n: usize| {
        with_threads(n, || {
            let rec = obs::Recorder::new();
            let out = obs::with_recorder(&rec, || {
                smartvlc_sim::run_chaos_suite(2, 77)
                    .iter()
                    .flat_map(|s| s.outcomes.iter().map(|o| o.goodput_bps.to_bits()))
                    .collect::<Vec<_>>()
            });
            (out, rec.snapshot())
        })
    };
    let (out1, snap1) = run(1);
    let (out8, snap8) = run(8);
    assert_eq!(out1, out8);
    assert_eq!(
        snap1.to_json(),
        snap8.to_json(),
        "telemetry JSON differs between 1 and 8 threads"
    );
    assert_eq!(snap1.to_csv(), snap8.to_csv());
    #[cfg(feature = "telemetry")]
    assert!(
        !snap1.is_empty(),
        "telemetry feature is on but the chaos suite recorded nothing"
    );
}

#[test]
fn cell_suite_is_byte_identical_across_thread_counts() {
    // The multi-cell workload end to end: ceiling-grid adaptation,
    // waypoint mobility, handover, TDMA, interference — the full battery
    // must serialize to the same bytes (and the same result bits) at any
    // thread count. This is exactly the artifact `cell_suite` writes to
    // `results/BENCH_cell.json`, so this test is the file-level
    // determinism gate in unit-test form.
    let run = |n: usize| with_threads(n, || smartvlc_sim::cell_suite_artifacts(1, 2026));
    let (json1, csv1, sums1) = run(1);
    let (json8, csv8, sums8) = run(8);
    assert_eq!(
        json1, json8,
        "BENCH_cell.json differs between SMARTVLC_THREADS=1 and 8"
    );
    assert_eq!(
        csv1, csv8,
        "TELEMETRY_cell.csv differs between SMARTVLC_THREADS=1 and 8"
    );
    // Bit-level, below the 6-decimal JSON formatting: per-user delivered
    // bits and handover counters must match exactly.
    let bits = |sums: &[smartvlc_sim::CellSuiteSummary]| {
        sums.iter()
            .flat_map(|s| {
                s.replicates.iter().flat_map(|r| {
                    r.users
                        .iter()
                        .map(|u| (u.delivered_bits.to_bits(), u.handovers, u.outage_ticks))
                })
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(bits(&sums1), bits(&sums8));
    assert!(
        sums1.iter().any(|s| s.handovers > 0),
        "battery exercised no handovers — the gate would be vacuous"
    );
}

#[test]
fn cell_suite_is_byte_identical_with_opcache_disabled() {
    // The operating-point cache is an interning layer, not an
    // approximation: force-disabling it (`SMARTVLC_OPCACHE=off`) must
    // reproduce the exact artifact bytes — including the hit/miss
    // counters, which the disabled cache still books identically.
    let cached = with_env(1, None, || smartvlc_sim::cell_suite_artifacts(1, 2026));
    let uncached = with_env(1, Some("off"), || {
        smartvlc_sim::cell_suite_artifacts(1, 2026)
    });
    assert_eq!(
        cached.0, uncached.0,
        "BENCH_cell.json differs with the operating-point cache disabled"
    );
    assert_eq!(
        cached.1, uncached.1,
        "TELEMETRY_cell.csv differs with the operating-point cache disabled"
    );
    // The cache must actually be exercised for this gate to mean anything.
    let queries: u64 = cached
        .2
        .iter()
        .map(|s| s.opcache_hits + s.opcache_misses)
        .sum();
    assert!(queries > 0, "battery issued no operating-point queries");
}

#[test]
fn telemetry_scope_does_not_perturb_results() {
    // Enabling telemetry must change no experiment result: the same sweep
    // with and without a recorder in scope is bit-identical.
    use smartvlc_obs as obs;
    let schemes = [SchemeKind::Amppm];
    let levels = [0.3, 0.6];
    let dur = SimDuration::millis(150);
    let bare = with_threads(2, || {
        fingerprint(&run_scheme_matrix(&schemes, &levels, dur, 15))
    });
    let rec = obs::Recorder::new();
    let scoped = with_threads(2, || {
        obs::with_recorder(&rec, || {
            fingerprint(&run_scheme_matrix(&schemes, &levels, dur, 15))
        })
    });
    assert_eq!(
        bare, scoped,
        "recording telemetry changed experiment results"
    );
}

proptest! {
    /// Recording telemetry must never change what an experiment returns,
    /// across seeds and replicate counts (the runtime analog of the
    /// `telemetry`-feature on/off bit-identity, which CI checks by running
    /// this whole suite with `--no-default-features` too).
    #[test]
    fn telemetry_never_perturbs_sweeps(base in 0u64..10_000, reps in 1usize..3) {
        use smartvlc_obs as obs;
        let points = [0u8; 3];
        let task = |_: &u8, id: smartvlc_sim::TaskId| {
            let mut rng = task_rng(id.seed, 0);
            (0..50).map(|_| rng.next_u64()).fold(0u64, u64::wrapping_add)
        };
        let bare = with_threads(4, || par_sweep(&points, reps, base, task));
        let rec = obs::Recorder::new();
        let scoped = with_threads(4, || {
            obs::with_recorder(&rec, || par_sweep(&points, reps, base, task))
        });
        prop_assert_eq!(bare, scoped);
    }

    /// Distinct `(seed, point_id)` tuples must yield distinct streams —
    /// checked on the first two draws, over arbitrary tuples.
    #[test]
    fn task_streams_never_collide(
        seed_a in 0u64..1_000_000,
        seed_b in 0u64..1_000_000,
        point_a in 0u64..10_000,
        point_b in 0u64..10_000,
    ) {
        prop_assume!((seed_a, point_a) != (seed_b, point_b));
        let mut a = task_rng(seed_a, point_a);
        let mut b = task_rng(seed_b, point_b);
        let first = (a.next_u64(), a.next_u64());
        let second = (b.next_u64(), b.next_u64());
        prop_assert_ne!(first, second,
            "stream collision: ({}, {}) vs ({}, {})", seed_a, point_a, seed_b, point_b);
    }

    /// The per-cell seed derivation is injective over realistic sweeps.
    #[test]
    fn sweep_cell_seeds_injective(base in 0u64..100_000, points in 1usize..20, reps in 1usize..10) {
        let ids = with_threads(1, || {
            par_sweep(&vec![0u8; points], reps, base, |_, id| id.seed)
        });
        let flat: Vec<u64> = ids.into_iter().flatten().collect();
        let set: std::collections::HashSet<u64> = flat.iter().copied().collect();
        prop_assert_eq!(set.len(), flat.len());
    }
}
