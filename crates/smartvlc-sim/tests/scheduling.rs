//! The scheduling subsystem's behavioural contract, over and above the
//! bit-equivalence gates in `cell_equivalence.rs`:
//!
//! 1. **Proportional fairness pays** — on an asymmetric two-cell
//!    scenario (and on the reference 4×4 battery grid) the PF policy's
//!    Jain index must beat equal share's.
//! 2. **Coordination conserves airtime** — proptest over random
//!    schedule contexts: the coordinated-edge policy never grants a
//!    user two cells in the same slot, never picks the serving cell as
//!    donor, and every cell's own airtime plus its donated airtime
//!    stays within one tick.
//! 3. **Policy battery determinism** — the 4×4 leg of the policy
//!    battery produces byte-identical JSON at `SMARTVLC_THREADS=1`
//!    and `=8`, and the bench binary's cell-edge gate (coordinated p5
//!    ≥ equal-share p5) holds from a plain test context too.

use proptest::prelude::*;
use smartvlc_sim::cell::{
    cell_policy_json, cell_policy_scenarios, run_cell, CellScheduler, CoordinatedEdge,
    LinkEstimate, PolicyPoint, PolicyScenario, ScheduleContext, SchedulerSpec, TickPlan,
};
use smartvlc_sim::scenario::CellScenarioBuilder;
use smartvlc_sim::{jain_index, par_sweep, task_seed, TaskId};
use std::sync::Mutex;

/// Serialize env mutation across the test binary's threads.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let old = std::env::var("SMARTVLC_THREADS").ok();
    std::env::set_var("SMARTVLC_THREADS", n.to_string());
    let out = f();
    match old {
        Some(v) => std::env::set_var("SMARTVLC_THREADS", v),
        None => std::env::remove_var("SMARTVLC_THREADS"),
    }
    out
}

/// Same seed, same scenario, two policies: the only degree of freedom
/// is the scheduler.
fn run_policy(policy: SchedulerSpec, seed: u64) -> smartvlc_sim::CellReport {
    let cfg = CellScenarioBuilder::new()
        .grid(2, 1)
        .users(8)
        .scheduler(policy)
        .build()
        .expect("valid")
        .config();
    run_cell(&cfg, seed)
}

#[test]
fn pf_improves_jain_on_an_asymmetric_two_cell_scenario() {
    // Two luminaires, eight waypoint users: membership is persistently
    // lopsided, so equal share starves whichever side is crowded while
    // PF's EWMA throughput history rebalances grants. Fixed seed — both
    // runs are bit-deterministic, so this is a regression anchor, not a
    // statistical test.
    let seed = 0x5eed_2ce1;
    let es = run_policy(SchedulerSpec::EqualShare, seed);
    let pf = run_policy(SchedulerSpec::proportional_fair(), seed);
    assert!(
        pf.jain_fairness > es.jain_fairness,
        "PF must improve fairness over equal share: {} <= {}",
        pf.jain_fairness,
        es.jain_fairness
    );
}

/// The 4×4 leg of the policy battery, seeded exactly like
/// `run_cell_policies` (policies on one grid share a seed).
fn reference_4x4(base_seed: u64) -> Vec<PolicyPoint> {
    let scenarios: Vec<PolicyScenario> = cell_policy_scenarios()
        .into_iter()
        .filter(|sc| sc.cfg.nx == 4)
        .collect();
    let grouped = par_sweep(
        &scenarios,
        1,
        base_seed,
        |sc: &PolicyScenario, _id: TaskId| {
            run_cell(&sc.cfg, task_seed(base_seed, sc.grid_index as u64))
        },
    );
    scenarios
        .iter()
        .zip(&grouped)
        .map(|(sc, reps)| PolicyPoint::from_report(sc, &reps[0]))
        .collect()
}

#[test]
fn policy_battery_is_deterministic_and_keeps_the_edge_gate() {
    // The bench binary's seed for the policy battery.
    let base_seed = 0xce11_5eed;
    let t1 = with_threads(1, || reference_4x4(base_seed));
    let t8 = with_threads(8, || reference_4x4(base_seed));
    assert_eq!(
        cell_policy_json(&t1),
        cell_policy_json(&t8),
        "policy battery JSON differs between SMARTVLC_THREADS=1 and 8"
    );

    let point = |policy: &str| {
        t1.iter()
            .find(|p| p.policy == policy)
            .expect("4x4 policy point present")
    };
    assert!(
        point("proportional_fair").jain_fairness > point("equal_share").jain_fairness,
        "PF must improve Jain on the reference 4x4 grid"
    );
    assert!(
        point("coordinated_edge").edge_p5_goodput_bps >= point("equal_share").edge_p5_goodput_bps,
        "cell-edge p5 regressed under coordination"
    );
    assert!(
        point("coordinated_edge").coord_grants > 0,
        "coordination must actually fire on the reference grid"
    );
}

#[test]
fn jain_index_brackets() {
    // Sanity on the metric itself: perfectly even → 1, one-user-takes-all
    // over n users → 1/n.
    assert_eq!(jain_index(&[5.0, 5.0, 5.0, 5.0]), 1.0);
    let lopsided = jain_index(&[12.0, 0.0, 0.0]);
    assert!((lopsided - 1.0 / 3.0).abs() < 1e-12);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Coordinated-edge airtime conservation on arbitrary contexts:
    /// every user gets at most one grant (from its serving cell), a
    /// donor is never the serving cell, and for every cell the airtime
    /// it grants its own members plus the airtime it donates to
    /// neighbours' edge users never exceeds one tick.
    #[test]
    fn coordinated_edge_conserves_airtime(
        n_cells in 1usize..=4,
        n_users in 1usize..=10,
        serving_raw in proptest::collection::vec(0usize..16, 10),
        eligible_raw in proptest::collection::vec(any::<bool>(), 10),
        sinr_raw in proptest::collection::vec(-10.0f64..30.0, 10),
        il_raw in proptest::collection::vec(any::<bool>(), 10),
        donor_raw in proptest::collection::vec(0usize..16, 10),
        margin_db in 0.0f64..15.0,
        joint_serve in any::<bool>(),
        rates in proptest::collection::vec(0.0f64..1.0e6, 4),
    ) {
        let serving: Vec<usize> = serving_raw[..n_users].iter().map(|&s| s % n_cells).collect();
        let mut members = vec![0u32; n_cells];
        for &c in &serving {
            members[c] += 1;
        }
        let rate_bps: Vec<f64> = rates[..n_cells].to_vec();
        let eligible: Vec<bool> = eligible_raw[..n_users].to_vec();
        let estimates: Vec<LinkEstimate> = (0..n_users)
            .map(|i| LinkEstimate {
                rate_bps: rate_bps[serving[i]],
                sinr_db: sinr_raw[i],
                interference_limited: il_raw[i],
                // The engine only ever reports an *interferer* as
                // dominant, so the generated donor avoids the serving
                // cell (None when there is no other cell).
                dominant_cell: if n_cells == 1 {
                    None
                } else {
                    let mut d = donor_raw[i] % n_cells;
                    if d == serving[i] {
                        d = (d + 1) % n_cells;
                    }
                    Some(d)
                },
            })
            .collect();
        let ctx = ScheduleContext {
            tick: 0,
            members: &members,
            rate_bps: &rate_bps,
            serving: &serving,
            eligible: &eligible,
            estimates: &estimates,
        };
        let mut ce = CoordinatedEdge::new(margin_db, joint_serve);
        let mut plan = TickPlan::new(n_users);
        ce.reschedule(&ctx, &mut plan);

        let mut own_airtime = vec![0.0f64; n_cells];
        let mut donated = vec![0.0f64; n_cells];
        for u in 0..n_users {
            if !eligible[u] {
                prop_assert_eq!(plan.airtime(u), 0.0, "ineligible user {} granted", u);
                prop_assert!(plan.coord(u).is_none(), "ineligible user {} coordinated", u);
                continue;
            }
            prop_assert!(plan.airtime(u) >= 0.0 && plan.airtime(u) <= 1.0 + 1e-12);
            own_airtime[serving[u]] += plan.airtime(u);
            if let Some(cg) = plan.coord(u) {
                // One slot, one serving cell: the donor aligns with (or
                // blanks for) the serving cell's grant — it is never a
                // second, independent grant, so it cannot be the serving
                // cell itself.
                prop_assert_ne!(
                    cg.donor, serving[u],
                    "user {} granted by its own cell twice in one slot", u
                );
                prop_assert!(cg.donor < n_cells);
                donated[cg.donor] += 1.0 / members[serving[u]].max(1) as f64;
            }
        }
        for c in 0..n_cells {
            prop_assert!(
                own_airtime[c] + donated[c] <= 1.0 + 1e-9,
                "cell {} oversubscribed: {} own + {} donated",
                c, own_airtime[c], donated[c]
            );
        }
        // The scheduler's own ledger agrees with the plan.
        let stats = ce.stats();
        let planned: u64 = (0..n_users).filter(|&u| plan.coord(u).is_some()).count() as u64;
        prop_assert_eq!(stats.coord_grants, planned);
    }
}
