//! The event-driven cell core's correctness contract:
//!
//! 1. **Bit-equivalence with the lockstep oracle** — on the seed
//!    scenarios (2×2/3×3/4×4 grids) the retired lockstep loop and the
//!    scheduler-driven core must produce bit-identical reports. This is
//!    the gate ISSUE 9 requires before the lockstep path can go.
//! 2. **Thread determinism at scale** — the 8×8 × 100-user scenario,
//!    fanned out on the work pool at `SMARTVLC_THREADS=1/2/8`, must
//!    produce byte-identical scaling-curve JSON and bit-identical
//!    per-user results.
//! 3. **Grant conservation** — proptest over random configurations
//!    (including aggressive handover policies that cancel and
//!    re-schedule grants constantly): every user-tick is exactly one of
//!    {grant, outage}, so a grant is never lost or duplicated.

#![allow(deprecated)] // the lockstep oracle is deprecated by design

use proptest::prelude::*;
use smartvlc_sim::cell::{
    run_cell, run_cell_lockstep, CellConfig, CellReport, CellTrafficSpec, SchedulerSpec,
};
use smartvlc_sim::scenario::CellScenarioBuilder;
use smartvlc_sim::{cell_scale_json, cell_scenarios, par_sweep, ScalePoint, TaskId};
use std::sync::Mutex;

/// Serialize env mutation across the test binary's threads.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let old = std::env::var("SMARTVLC_THREADS").ok();
    std::env::set_var("SMARTVLC_THREADS", n.to_string());
    let out = f();
    match old {
        Some(v) => std::env::set_var("SMARTVLC_THREADS", v),
        None => std::env::remove_var("SMARTVLC_THREADS"),
    }
    out
}

/// Everything in a report except the queue-only observables
/// (`events`/`queue_peak`, which the lockstep oracle reports as 0),
/// reduced to exact bits.
fn fingerprint(r: &CellReport) -> Vec<u64> {
    let mut v = vec![
        r.aggregate_goodput_bps.to_bits(),
        r.handovers,
        r.mean_handover_latency_s.map_or(0, f64::to_bits),
        r.outage_fraction.to_bits(),
        r.interference_limited_fraction.to_bits(),
        r.opcache_hits,
        r.opcache_misses,
        r.slots_equivalent.to_bits(),
    ];
    for u in &r.users {
        v.extend([
            u.delivered_bits.to_bits(),
            u.goodput_bps.to_bits(),
            u.handovers,
            u.outage_ticks,
            u.grant_ticks,
        ]);
    }
    for c in &r.cells {
        v.extend([
            c.delivered_bits.to_bits(),
            c.mean_led.to_bits(),
            c.mean_users.to_bits(),
            c.smart_steps,
        ]);
    }
    v
}

#[test]
fn event_core_reproduces_lockstep_on_the_seed_scenarios() {
    // Every scenario of the legacy battery, at a replicate-style seed:
    // the event queue must not perturb a single bit anywhere in the
    // report — per-user f64 accumulations included, which makes this a
    // test of same-instant event *ordering*, not just of totals.
    for (i, sc) in cell_scenarios().iter().enumerate() {
        let cfg = sc.config();
        let seed = 0xce11_0000 + i as u64;
        let lock = run_cell_lockstep(&cfg, seed);
        let ev = run_cell(&cfg, seed);
        assert_eq!(
            fingerprint(&lock),
            fingerprint(&ev),
            "event core diverges from lockstep on {}",
            sc.name
        );
        assert_eq!(lock.events, 0, "oracle must not touch the queue");
        assert!(ev.events > 0 && ev.queue_peak > 0, "event core must");
    }
}

#[test]
fn event_core_reproduces_lockstep_with_quantized_sensing() {
    // The op-cache bugfix knob runs through both cores' sensing paths.
    let cfg = CellScenarioBuilder::new()
        .grid(3, 3)
        .users(6)
        .sensor_resolution_lux(smartvlc_sim::cell::QUANTIZED_SENSOR_RES_LUX)
        .build()
        .expect("valid")
        .config();
    let lock = run_cell_lockstep(&cfg, 77);
    let ev = run_cell(&cfg, 77);
    assert_eq!(fingerprint(&lock), fingerprint(&ev));
    assert!(
        ev.opcache_hits > 0,
        "quantized sensing must earn cache hits: {ev:?}"
    );
}

#[test]
fn traffic_observer_does_not_perturb_equal_share() {
    // The NetMix traffic bridge is a pure observer of delivered bits:
    // switching it on under the default equal-share policy must not move
    // a single bit of the report the lockstep oracle reproduces (the
    // oracle ignores the traffic knob entirely, so equal fingerprints
    // prove the observer never feeds back into delivery math).
    let cfg = CellScenarioBuilder::new()
        .grid(3, 3)
        .users(6)
        .scheduler(SchedulerSpec::EqualShare)
        .traffic(CellTrafficSpec::NetMix)
        .build()
        .expect("valid")
        .config();
    let lock = run_cell_lockstep(&cfg, 4242);
    let ev = run_cell(&cfg, 4242);
    assert_eq!(
        fingerprint(&lock),
        fingerprint(&ev),
        "traffic observer perturbed the equal-share delivery path"
    );
    let t = ev.traffic.expect("NetMix must attach a traffic report");
    assert!(t.flows_offered > 0, "the workload mix must offer flows");
}

#[test]
fn scale_scenario_is_byte_identical_across_thread_counts() {
    // The 8×8 × 100-user scenario through the deterministic work pool at
    // 1, 2 and 8 threads: the scaling-curve JSON (the bytes the bench bin
    // splices into BENCH_cell.json) and the underlying user results must
    // not move by a bit.
    let scenario = CellScenarioBuilder::new()
        .grid(8, 8)
        .users(100)
        .name("scale_8x8_users100")
        .build()
        .expect("valid");
    let run = |threads: usize| {
        with_threads(threads, || {
            let reports = par_sweep(
                std::slice::from_ref(&scenario),
                1,
                2026,
                |sc: &smartvlc_sim::CellScenario, id: TaskId| run_cell(&sc.config(), id.seed),
            );
            let r = &reports[0][0];
            let json = cell_scale_json(&[ScalePoint::from_report(&scenario, r)]);
            (json, fingerprint(r), r.events, r.queue_peak)
        })
    };
    let t1 = run(1);
    let t2 = run(2);
    let t8 = run(8);
    assert_eq!(t1.0, t2.0, "scale JSON differs between 1 and 2 threads");
    assert_eq!(t1.0, t8.0, "scale JSON differs between 1 and 8 threads");
    assert_eq!(t1.1, t2.1);
    assert_eq!(t1.1, t8.1);
    assert!(t1.2 > 0 && t1.3 > 0, "the event queue must have run");
}

/// A handover-heavy configuration: tiny dwell so grants get cancelled
/// and re-scheduled constantly, variable association delay (including 0,
/// the leave-the-grant-alone path).
fn chaotic_cfg(
    nx: usize,
    ny: usize,
    n_users: usize,
    ticks: u32,
    dwell: u32,
    delay: u32,
) -> CellConfig {
    let mut cfg = CellConfig::standard(nx, ny, n_users);
    cfg.ticks = ticks;
    cfg.policy.dwell_ticks = dwell;
    cfg.policy.assoc_delay_ticks = delay;
    cfg.policy.hysteresis_db = 0.5; // hair trigger: maximal rescheduling
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Grant conservation under event cancellation/re-scheduling: for
    /// every user, `grant_ticks + outage_ticks == ticks` — a cancelled
    /// grant is always replaced by outage accounting, and a re-scheduled
    /// grant never double-fires. Checked against the lockstep oracle's
    /// counts too, so the bulk outage-interval arithmetic must agree
    /// with per-tick counting under overlapping handovers.
    #[test]
    fn handover_never_loses_or_duplicates_a_grant(
        nx in 1usize..=3,
        ny in 1usize..=3,
        n_users in 1usize..=5,
        ticks in 10u32..=90,
        dwell in 1u32..=3,
        delay in 0u32..=6,
        seed in 0u64..1_000_000,
    ) {
        let cfg = chaotic_cfg(nx, ny, n_users, ticks, dwell, delay);
        let ev = run_cell(&cfg, seed);
        for u in &ev.users {
            prop_assert_eq!(
                u.grant_ticks + u.outage_ticks,
                ticks as u64,
                "user {} lost/duplicated a grant: {} grants + {} outage != {} ticks \
                 (dwell={}, delay={})",
                u.id, u.grant_ticks, u.outage_ticks, ticks, dwell, delay
            );
        }
        let lock = run_cell_lockstep(&cfg, seed);
        prop_assert_eq!(fingerprint(&lock), fingerprint(&ev));

        // The invariant is policy-independent: proportional-fair and the
        // coordinated scheduler drive the exact same grant machinery, so
        // the identity must survive them too (no lockstep comparison —
        // the oracle only models equal share). The traffic observer
        // rides along to prove it survives chaos as well.
        for policy in [
            SchedulerSpec::proportional_fair(),
            SchedulerSpec::coordinated_edge(),
        ] {
            let mut pcfg = cfg;
            pcfg.scheduler = policy;
            pcfg.traffic = CellTrafficSpec::NetMix;
            let pr = run_cell(&pcfg, seed);
            for u in &pr.users {
                prop_assert_eq!(
                    u.grant_ticks + u.outage_ticks,
                    ticks as u64,
                    "user {} lost/duplicated a grant under {}: {} grants + {} outage != {}",
                    u.id, policy.name(), u.grant_ticks, u.outage_ticks, ticks
                );
            }
        }
    }
}
