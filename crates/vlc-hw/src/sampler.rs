//! The receive path: the PRU-driven ADC sampler.
//!
//! The PRU clocks the ADS7883 over bit-banged SPI at `fs = 4·ftx =
//! 500 kHz` and pushes each 12-bit code into the RX ring for the ARM to
//! demodulate. If the ARM stalls and the ring fills, samples are dropped
//! on the floor — a receive **overrun** that desynchronizes the slot
//! clock recovery, which is why the paper sizes the ring generously and
//! keeps the ARM-side processing lean.

use crate::pru::{AccessMethod, PruTimingModel};
use crate::shmem::SharedRing;
use desim::{SimDuration, SimTime};

/// The PRU-side ADC sampling loop.
pub struct AdcSampler {
    ring: SharedRing<u16>,
    period: SimDuration,
    next_tick: SimTime,
    dropped: u64,
    taken: u64,
}

impl AdcSampler {
    /// Build a sampler pushing into `ring` every `period`. Panics if the
    /// access method cannot clock the ADC that fast (20 GPIO edges per
    /// SPI word).
    pub fn new(ring: SharedRing<u16>, period: SimDuration, method: AccessMethod) -> AdcSampler {
        let timing = PruTimingModel::bbb(method);
        let rate = 1e9 / period.as_nanos() as f64;
        assert!(
            timing.max_spi_sample_rate_hz() >= rate,
            "{} cannot clock the ADC at {:.0} S/s (max {:.0})",
            timing.method.name(),
            rate,
            timing.max_spi_sample_rate_hz()
        );
        AdcSampler {
            ring,
            period,
            next_tick: SimTime::ZERO,
            dropped: 0,
            taken: 0,
        }
    }

    /// The shared RX ring (consumer side handle).
    pub fn ring(&self) -> SharedRing<u16> {
        self.ring.clone()
    }

    /// Run the sampling loop until `until`, drawing codes from `source`
    /// (the simulated frontend output, one code per call).
    pub fn run_until(&mut self, until: SimTime, mut source: impl FnMut(SimTime) -> u16) {
        while self.next_tick <= until {
            let code = source(self.next_tick);
            self.taken += 1;
            if !self.ring.push(code) {
                self.dropped += 1;
            }
            self.next_tick += self.period;
        }
    }

    /// Samples dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total samples taken from the ADC.
    pub fn taken(&self) -> u64 {
        self.taken
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs_period() -> SimDuration {
        SimDuration::micros(2) // 500 kHz
    }

    #[test]
    fn samples_on_the_grid() {
        let ring = SharedRing::new(4096);
        let mut s = AdcSampler::new(ring.clone(), fs_period(), AccessMethod::Pru);
        // Source encodes the sample index so order is checkable.
        let mut n = 0u16;
        s.run_until(SimTime::from_micros(2 * 99), |_| {
            n += 1;
            n - 1
        });
        assert_eq!(s.taken(), 100);
        let got = ring.pop_up_to(1000);
        assert_eq!(got.len(), 100);
        assert!(got.windows(2).all(|w| w[1] == w[0] + 1));
    }

    #[test]
    fn overrun_drops_but_keeps_sampling() {
        let ring = SharedRing::new(10);
        let mut s = AdcSampler::new(ring.clone(), fs_period(), AccessMethod::Pru);
        s.run_until(SimTime::from_micros(2 * 24), |_| 7);
        assert_eq!(s.taken(), 25);
        assert_eq!(s.dropped(), 15);
        assert_eq!(ring.len(), 10);
    }

    #[test]
    #[should_panic(expected = "cannot clock the ADC")]
    fn xenomai_cannot_reach_500ksps() {
        AdcSampler::new(SharedRing::new(16), fs_period(), AccessMethod::XenomaiTask);
    }

    #[test]
    fn pru_reaches_the_adc_limit() {
        // The ADS7883 tops out at 3 MS/s; the PRU can clock it close to
        // that (footnote 3 of the paper).
        let t = PruTimingModel::bbb(AccessMethod::Pru);
        assert!(t.max_spi_sample_rate_hz() >= 800_000.0);
    }
}
