//! The ESP8266 Wi-Fi side channel.
//!
//! SmartVLC's uplink is not optical: ACKs and the receiver's ambient
//! light reports travel over a Farnell ESP8266 module (§5.1, footnote 2 —
//! mobile-node LEDs are too weak for an optical uplink). For the MAC what
//! matters is the delay distribution and loss rate of that path:
//! UART at 115200 baud into 802.11 DCF gives a few milliseconds of
//! latency with occasional jitter spikes and rare losses.

use desim::{DetRng, SimDuration, SimTime};

/// Anything that can carry uplink messages back to the transmitter: the
/// ESP8266 Wi-Fi module here, or (the paper's footnote-2 future work) a
/// VLC uplink when mobile-node LEDs are strong enough.
pub trait SideChannel<T> {
    /// Send a message at `now`; `Some(delivery_time)` unless lost.
    fn send(&mut self, now: SimTime, payload: T) -> Option<SimTime>;
    /// Pop every message whose delivery time has arrived.
    fn deliver_due(&mut self, now: SimTime) -> Vec<T>;
}

/// A message in flight on the side channel.
#[derive(Clone, Debug, PartialEq)]
pub struct SideChannelMsg<T> {
    /// Delivery time (already includes latency + jitter).
    pub deliver_at: SimTime,
    /// The payload.
    pub payload: T,
}

/// Latency/jitter/loss model of the ESP8266 path.
pub struct WifiSideChannel<T> {
    /// Base one-way latency.
    pub base_latency: SimDuration,
    /// Exponential jitter mean (DCF backoff tail).
    pub jitter_mean: SimDuration,
    /// Probability a message is lost outright.
    pub loss_prob: f64,
    rng: DetRng,
    in_flight: Vec<SideChannelMsg<T>>,
}

impl<T> WifiSideChannel<T> {
    /// The paper's module: ~4 ms base latency (UART framing + Wi-Fi),
    /// ~1.5 ms mean jitter, 1% loss in a busy office band.
    pub fn esp8266(rng: DetRng) -> WifiSideChannel<T> {
        WifiSideChannel {
            base_latency: SimDuration::micros(4_000),
            jitter_mean: SimDuration::micros(1_500),
            loss_prob: 0.01,
            rng,
            in_flight: Vec::new(),
        }
    }

    /// An ideal side channel (zero latency, no loss) for unit tests.
    pub fn ideal(rng: DetRng) -> WifiSideChannel<T> {
        WifiSideChannel {
            base_latency: SimDuration::ZERO,
            jitter_mean: SimDuration::ZERO,
            loss_prob: 0.0,
            rng,
            in_flight: Vec::new(),
        }
    }

    /// Send a message at time `now`. Returns the scheduled delivery time,
    /// or `None` if the channel lost it.
    pub fn send(&mut self, now: SimTime, payload: T) -> Option<SimTime> {
        if self.rng.chance(self.loss_prob) {
            return None;
        }
        let jitter_ns = if self.jitter_mean.is_zero() {
            0.0
        } else {
            // Exponential with the configured mean.
            -(self.jitter_mean.as_nanos() as f64) * (1.0 - self.rng.next_f64()).ln()
        };
        let deliver_at = now + self.base_latency + SimDuration::nanos(jitter_ns as u64);
        self.in_flight.push(SideChannelMsg {
            deliver_at,
            payload,
        });
        Some(deliver_at)
    }

    /// Pop every message whose delivery time has arrived, in delivery
    /// order.
    pub fn deliver_due(&mut self, now: SimTime) -> Vec<T> {
        let mut due = Vec::new();
        let mut still = Vec::with_capacity(self.in_flight.len());
        for m in self.in_flight.drain(..) {
            if m.deliver_at <= now {
                due.push(m);
            } else {
                still.push(m);
            }
        }
        self.in_flight = still;
        due.sort_by_key(|m| m.deliver_at);
        due.into_iter().map(|m| m.payload).collect()
    }

    /// Messages still in flight.
    pub fn pending(&self) -> usize {
        self.in_flight.len()
    }
}

impl<T> SideChannel<T> for WifiSideChannel<T> {
    fn send(&mut self, now: SimTime, payload: T) -> Option<SimTime> {
        WifiSideChannel::send(self, now, payload)
    }
    fn deliver_due(&mut self, now: SimTime) -> Vec<T> {
        WifiSideChannel::deliver_due(self, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> DetRng {
        DetRng::seed_from_u64(5)
    }

    #[test]
    fn ideal_channel_is_instant_and_lossless() {
        let mut ch: WifiSideChannel<u32> = WifiSideChannel::ideal(rng());
        let t = SimTime::from_millis(10);
        assert_eq!(ch.send(t, 1), Some(t));
        assert_eq!(ch.deliver_due(t), vec![1]);
    }

    #[test]
    fn latency_is_applied() {
        let mut ch: WifiSideChannel<u32> = WifiSideChannel::esp8266(rng());
        ch.loss_prob = 0.0;
        let t0 = SimTime::ZERO;
        let at = ch.send(t0, 7).unwrap();
        assert!(at >= t0 + SimDuration::micros(4_000));
        // Not delivered early.
        assert!(ch.deliver_due(t0 + SimDuration::micros(3_999)).is_empty());
        assert_eq!(ch.deliver_due(at), vec![7]);
    }

    #[test]
    fn delivery_order_follows_arrival_time() {
        let mut ch: WifiSideChannel<u32> = WifiSideChannel::esp8266(rng());
        ch.loss_prob = 0.0;
        let mut deliver_at = std::collections::HashMap::new();
        for i in 0..50u32 {
            let at = ch.send(SimTime::from_micros(i as u64 * 10), i).unwrap();
            deliver_at.insert(i, at);
        }
        let all = ch.deliver_due(SimTime::from_secs(1));
        assert_eq!(all.len(), 50);
        // deliver_due sorts by arrival time, which jitter may reorder
        // relative to send order.
        for w in all.windows(2) {
            assert!(deliver_at[&w[0]] <= deliver_at[&w[1]]);
        }
    }

    #[test]
    fn losses_happen_at_the_configured_rate() {
        let mut ch: WifiSideChannel<u32> = WifiSideChannel::esp8266(rng());
        let mut lost = 0;
        for i in 0..10_000 {
            if ch.send(SimTime::from_micros(i), 0).is_none() {
                lost += 1;
            }
        }
        assert!((50..200).contains(&lost), "lost={lost}");
    }

    #[test]
    fn jitter_spreads_latencies() {
        let mut ch: WifiSideChannel<u32> = WifiSideChannel::esp8266(rng());
        ch.loss_prob = 0.0;
        let t0 = SimTime::ZERO;
        let mut lats: Vec<u64> = (0..1000)
            .filter_map(|_| ch.send(t0, 0))
            .map(|at| (at - t0).as_nanos())
            .collect();
        lats.sort_unstable();
        let p10 = lats[100];
        let p90 = lats[900];
        assert!(p90 > p10 + 1_000_000, "p10={p10} p90={p90}"); // >1 ms spread
        let mean = lats.iter().sum::<u64>() as f64 / lats.len() as f64 - 4_000_000.0;
        assert!((mean - 1_500_000.0).abs() < 200_000.0, "jitter mean={mean}");
    }

    #[test]
    fn pending_counts_in_flight() {
        let mut ch: WifiSideChannel<u32> = WifiSideChannel::esp8266(rng());
        ch.loss_prob = 0.0;
        ch.send(SimTime::ZERO, 1);
        ch.send(SimTime::ZERO, 2);
        assert_eq!(ch.pending(), 2);
        ch.deliver_due(SimTime::from_secs(1));
        assert_eq!(ch.pending(), 0);
    }
}
