//! # vlc-hw — the BeagleBone Black platform substrate
//!
//! §5 of the paper is about making a $60 BeagleBone Black (BBB) do what
//! normally takes a $5000 USRP/WARP: modulate an LED and sample an ADC at
//! hundreds of kilohertz, in real time, from a non-realtime Linux board.
//! Its answer is the BBB's **PRUs** (Programmable Real-time Units, two
//! 200 MHz deterministic microcontrollers sharing memory with the ARM
//! core): the PRU bit-bangs GPIO/SPI at deterministic speed while the ARM
//! runs the upper layers, the two sides meeting in shared-memory rings.
//!
//! This crate models that platform faithfully enough for the system-level
//! claims to be checked in simulation:
//!
//! * [`pru`] — cycle-budget timing model of the four GPIO access methods
//!   §5.2 compares (sysfs files, mmap'd registers, a Xenomai kernel, and
//!   the PRU), with the achievable toggle/sample rates of each.
//! * [`shmem`] — the ARM↔PRU shared-memory ring buffers, with the
//!   overrun/underrun semantics real firmware has to handle.
//! * [`gpio`] — the transmit path: a slot-clocked GPIO modulator draining
//!   the TX ring.
//! * [`sampler`] — the receive path: an ADC sampler filling the RX ring
//!   at `fs = 4·ftx`.
//! * [`wifi`] — the ESP8266 Wi-Fi side channel used for ACKs and
//!   ambient-light reports (§3/§5.1), modeled as latency + jitter + loss.
//! * [`board`] — transmitter and receiver board compositions.
//!
//! # Example
//!
//! The §5.2 claim in executable form: of the four GPIO access methods,
//! only the PRU sustains the paper's `ftx = 125 kHz` slot clock:
//!
//! ```
//! use vlc_hw::{AccessMethod, PruTimingModel};
//!
//! let ftx_hz = 125_000.0;
//! assert!(PruTimingModel::bbb(AccessMethod::Pru).supports_hz(ftx_hz));
//! for slow in [
//!     AccessMethod::SysfsFile,
//!     AccessMethod::MmapRegisters,
//!     AccessMethod::XenomaiTask,
//! ] {
//!     assert!(!PruTimingModel::bbb(slow).supports_hz(ftx_hz));
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod board;
pub mod gpio;
pub mod pru;
pub mod sampler;
pub mod shmem;
pub mod wifi;

pub use board::{ReceiverBoard, TransmitterBoard};
pub use pru::{AccessMethod, PruTimingModel};
pub use shmem::SharedRing;
pub use wifi::{SideChannel, WifiSideChannel};
