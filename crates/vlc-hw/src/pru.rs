//! PRU cycle-budget timing model — the quantitative version of §5.2.
//!
//! The paper walks through four ways of toggling a BBB GPIO (or clocking
//! an ADC) and why only the last is fast enough:
//!
//! 1. **Sysfs** — writing `/sys/class/gpio/.../value`: each toggle is a
//!    syscall + VFS walk, a few hundred microseconds with non-realtime
//!    jitter.
//! 2. **Mmap** — poking the GPIO registers from userspace: "around 10x"
//!    faster than sysfs per the paper, but still at the mercy of the
//!    scheduler.
//! 3. **Xenomai** — an RT-patched kernel task: "up to 50 kHz" (the paper
//!    cites its own OpenVLC work, reference \[38\]).
//! 4. **PRU** — a dedicated 200 MHz core with single-cycle I/O: toggle
//!    rates in the MHz, deterministic to the nanosecond.
//!
//! The model assigns each method a per-operation cycle/latency budget and
//! derives the achievable slot clock, which is what bounds the system
//! throughput in `tableA_platform_rates`.

use serde::{Deserialize, Serialize};

/// How the CPU reaches the GPIO/ADC.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessMethod {
    /// `/sys/class/gpio` file writes from Linux userspace.
    SysfsFile,
    /// Memory-mapped GPIO registers from Linux userspace.
    MmapRegisters,
    /// RT task under a Xenomai-patched kernel.
    XenomaiTask,
    /// PRU firmware bit-banging with single-cycle I/O.
    Pru,
}

impl AccessMethod {
    /// All methods, slowest first.
    pub const ALL: [AccessMethod; 4] = [
        AccessMethod::SysfsFile,
        AccessMethod::MmapRegisters,
        AccessMethod::XenomaiTask,
        AccessMethod::Pru,
    ];

    /// Human-readable name matching the paper's discussion.
    pub fn name(self) -> &'static str {
        match self {
            AccessMethod::SysfsFile => "sysfs file I/O",
            AccessMethod::MmapRegisters => "mmap'd registers",
            AccessMethod::XenomaiTask => "Xenomai RT task",
            AccessMethod::Pru => "PRU firmware",
        }
    }
}

/// The timing model for one access method on the BBB.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PruTimingModel {
    /// Method being modeled.
    pub method: AccessMethod,
    /// Fixed cost per GPIO operation, nanoseconds (syscall, register
    /// write, or PRU instruction sequence).
    pub op_cost_ns: f64,
    /// OS scheduling jitter, nanoseconds RMS (zero for the PRU).
    pub jitter_ns_rms: f64,
}

impl PruTimingModel {
    /// BBB (AM335x, PRU @ 200 MHz) budgets for each method.
    pub fn bbb(method: AccessMethod) -> PruTimingModel {
        match method {
            // One toggle = open-write-close avoided, but still a syscall
            // round trip + VFS: ~150 µs on the AM335x.
            AccessMethod::SysfsFile => PruTimingModel {
                method,
                op_cost_ns: 150_000.0,
                jitter_ns_rms: 50_000.0,
            },
            // "around 10x in our test" faster than sysfs.
            AccessMethod::MmapRegisters => PruTimingModel {
                method,
                op_cost_ns: 15_000.0,
                jitter_ns_rms: 20_000.0,
            },
            // "a sampling rate of up to 50 kHz" [38] => 20 µs per op.
            AccessMethod::XenomaiTask => PruTimingModel {
                method,
                op_cost_ns: 20_000.0,
                jitter_ns_rms: 2_000.0,
            },
            // ~12 instructions per slot toggle loop at 5 ns/inst.
            AccessMethod::Pru => PruTimingModel {
                method,
                op_cost_ns: 60.0,
                jitter_ns_rms: 0.0,
            },
        }
    }

    /// Maximum reliable operation rate: ops must fit their period with
    /// 3σ of jitter margin.
    pub fn max_rate_hz(&self) -> f64 {
        1e9 / (self.op_cost_ns + 3.0 * self.jitter_ns_rms)
    }

    /// Can this method sustain the given slot clock?
    pub fn supports_hz(&self, rate_hz: f64) -> bool {
        self.max_rate_hz() >= rate_hz
    }

    /// SPI ADC sampling needs ~20 GPIO edges per 12-bit word (clock +
    /// chip-select framing); the achievable sample rate is the op rate
    /// divided by that.
    pub fn max_spi_sample_rate_hz(&self) -> f64 {
        self.max_rate_hz() / 20.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_paper() {
        // sysfs < mmap < xenomai < pru, each a clear step up.
        let rates: Vec<f64> = AccessMethod::ALL
            .iter()
            .map(|&m| PruTimingModel::bbb(m).max_rate_hz())
            .collect();
        for w in rates.windows(2) {
            assert!(w[1] > w[0] * 2.0, "{rates:?}");
        }
    }

    #[test]
    fn mmap_is_about_10x_sysfs() {
        // "can be used to control GPIOs at a much faster speed (around
        // 10x in our test)".
        let sysfs = PruTimingModel::bbb(AccessMethod::SysfsFile);
        let mmap = PruTimingModel::bbb(AccessMethod::MmapRegisters);
        let ratio = mmap.op_cost_ns / sysfs.op_cost_ns;
        assert!((0.05..=0.2).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    fn xenomai_hits_50khz_but_not_125khz() {
        // "can achieve a sampling rate of up to 50 KHz. However, this
        // speed is still far away from our target."
        let x = PruTimingModel::bbb(AccessMethod::XenomaiTask);
        assert!(x.supports_hz(38_000.0));
        assert!(!x.supports_hz(125_000.0));
    }

    #[test]
    fn only_pru_sustains_the_paper_clocks() {
        // ftx = 125 kHz at the transmitter, fs = 500 kHz at the receiver.
        for m in AccessMethod::ALL {
            let t = PruTimingModel::bbb(m);
            let ok = t.supports_hz(125_000.0) && t.max_spi_sample_rate_hz() >= 500_000.0;
            assert_eq!(ok, m == AccessMethod::Pru, "{m:?}");
        }
    }

    #[test]
    fn pru_reaches_mbps_order() {
        // "we can modulate the LED light and perform sampling at speeds in
        // the order of Mbps".
        let pru = PruTimingModel::bbb(AccessMethod::Pru);
        assert!(pru.max_rate_hz() > 1e7); // >10 MHz raw toggles
        assert!(pru.max_spi_sample_rate_hz() > 8e5); // ADS7883 territory
    }

    #[test]
    fn jitter_costs_rate() {
        let quiet = PruTimingModel {
            method: AccessMethod::MmapRegisters,
            op_cost_ns: 15_000.0,
            jitter_ns_rms: 0.0,
        };
        let noisy = PruTimingModel::bbb(AccessMethod::MmapRegisters);
        assert!(quiet.max_rate_hz() > noisy.max_rate_hz());
    }
}
