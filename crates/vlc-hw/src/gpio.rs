//! The transmit path: a slot-clocked GPIO modulator.
//!
//! The PRU firmware's transmit loop is brutally simple — every `tslot` it
//! pops one slot from the TX ring and writes the GPIO that gates the LED
//! MOSFET. The interesting behaviour is what happens when the ARM falls
//! behind: an **underrun** leaves the GPIO at its last level, which both
//! corrupts the frame and, if sustained, parks the LED at a constant
//! state (illumination glitch). [`GpioModulator`] models exactly that.

use crate::pru::{AccessMethod, PruTimingModel};
use crate::shmem::SharedRing;
use desim::{SimDuration, SimTime};

/// The PRU-side GPIO transmit loop.
pub struct GpioModulator {
    ring: SharedRing<bool>,
    tslot: SimDuration,
    timing: PruTimingModel,
    level: bool,
    /// Emitted waveform: (time, level) at each slot boundary.
    trace: Vec<(SimTime, bool)>,
    underrun_slots: u64,
    next_tick: SimTime,
}

impl GpioModulator {
    /// Build a modulator draining `ring` at the slot clock implied by
    /// `tslot`. Panics if the access method cannot sustain the clock —
    /// the §5.2 constraint made executable.
    pub fn new(ring: SharedRing<bool>, tslot: SimDuration, method: AccessMethod) -> GpioModulator {
        let timing = PruTimingModel::bbb(method);
        let rate = 1e9 / tslot.as_nanos() as f64;
        assert!(
            timing.supports_hz(rate),
            "{} cannot sustain {:.0} Hz slot clock (max {:.0} Hz)",
            timing.method.name(),
            rate,
            timing.max_rate_hz()
        );
        GpioModulator {
            ring,
            tslot,
            timing,
            level: false,
            trace: Vec::new(),
            underrun_slots: 0,
            next_tick: SimTime::ZERO,
        }
    }

    /// The shared TX ring (producer side handle).
    pub fn ring(&self) -> SharedRing<bool> {
        self.ring.clone()
    }

    /// Run the slot loop until `until`, recording the emitted waveform.
    pub fn run_until(&mut self, until: SimTime) {
        while self.next_tick <= until {
            match self.ring.pop() {
                Some(slot) => self.level = slot,
                None => self.underrun_slots += 1, // GPIO holds its level
            }
            self.trace.push((self.next_tick, self.level));
            self.next_tick += self.tslot;
        }
    }

    /// Slots emitted while the ring was dry.
    pub fn underruns(&self) -> u64 {
        self.underrun_slots
    }

    /// The emitted waveform so far.
    pub fn trace(&self) -> &[(SimTime, bool)] {
        &self.trace
    }

    /// Just the levels of the emitted waveform.
    pub fn emitted_slots(&self) -> Vec<bool> {
        self.trace.iter().map(|&(_, l)| l).collect()
    }

    /// The configured timing model.
    pub fn timing(&self) -> &PruTimingModel {
        &self.timing
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tslot() -> SimDuration {
        SimDuration::micros(8)
    }

    #[test]
    fn drains_ring_at_slot_clock() {
        let ring = SharedRing::new(1024);
        for i in 0..10 {
            ring.push(i % 2 == 0);
        }
        let mut gpio = GpioModulator::new(ring, tslot(), AccessMethod::Pru);
        gpio.run_until(SimTime::from_micros(9 * 8));
        let emitted = gpio.emitted_slots();
        assert_eq!(emitted.len(), 10);
        assert_eq!(emitted, (0..10).map(|i| i % 2 == 0).collect::<Vec<_>>());
        assert_eq!(gpio.underruns(), 0);
        // Timestamps land exactly on the slot grid.
        assert_eq!(gpio.trace()[3].0, SimTime::from_micros(24));
    }

    #[test]
    fn underrun_holds_level() {
        let ring = SharedRing::new(1024);
        ring.push(true);
        ring.push(true);
        let mut gpio = GpioModulator::new(ring, tslot(), AccessMethod::Pru);
        gpio.run_until(SimTime::from_micros(5 * 8));
        let emitted = gpio.emitted_slots();
        assert_eq!(emitted.len(), 6);
        // Two real slots, then the GPIO freezes at its last level (ON).
        assert!(emitted.iter().all(|&l| l));
        assert_eq!(gpio.underruns(), 4);
    }

    #[test]
    fn refill_resumes_cleanly() {
        let ring = SharedRing::new(1024);
        ring.push(true);
        let mut gpio = GpioModulator::new(ring.clone(), tslot(), AccessMethod::Pru);
        gpio.run_until(SimTime::from_micros(8));
        ring.push(false);
        ring.push(true);
        gpio.run_until(SimTime::from_micros(4 * 8));
        assert_eq!(gpio.emitted_slots(), vec![true, true, false, true, true]);
        assert_eq!(gpio.underruns(), 2); // ticks 1 and 4 were dry
    }

    #[test]
    #[should_panic(expected = "cannot sustain")]
    fn sysfs_cannot_drive_the_slot_clock() {
        // The executable form of Sec. 5.2's argument.
        GpioModulator::new(SharedRing::new(16), tslot(), AccessMethod::SysfsFile);
    }

    #[test]
    fn xenomai_drives_slow_clocks_only() {
        // 25 kHz is within Xenomai's reach...
        GpioModulator::new(
            SharedRing::new(16),
            SimDuration::micros(40),
            AccessMethod::XenomaiTask,
        );
    }

    #[test]
    #[should_panic(expected = "cannot sustain")]
    fn xenomai_fails_at_125khz() {
        GpioModulator::new(SharedRing::new(16), tslot(), AccessMethod::XenomaiTask);
    }
}
