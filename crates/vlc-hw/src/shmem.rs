//! ARM↔PRU shared-memory rings.
//!
//! On the real BBB, the ARM core and the PRU communicate through the
//! PRU's 12 KB shared data RAM: the ARM writes modulated slots into a TX
//! ring, the PRU drains it at the slot clock; in the other direction the
//! PRU fills an RX ring with ADC samples the ARM consumes. Neither side
//! waits for the other — overruns and underruns are real failure modes
//! the firmware must surface (an underrun at the transmitter would glue
//! the LED at its last state and flicker).
//!
//! [`SharedRing`] is a bounded SPSC ring with those exact semantics. The
//! default implementation is single-threaded (the simulation is a DES),
//! but the structure is `parking_lot`-locked so the threaded demo in
//! `board.rs` can share it across real threads too.

use parking_lot::Mutex;
use std::sync::Arc;

/// Statistics for one ring.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RingStats {
    /// Items successfully pushed.
    pub pushed: u64,
    /// Items successfully popped.
    pub popped: u64,
    /// Push attempts rejected because the ring was full (overrun at the
    /// producer).
    pub overruns: u64,
    /// Pop attempts on an empty ring (underrun at the consumer).
    pub underruns: u64,
}

struct Inner<T> {
    buf: std::collections::VecDeque<T>,
    capacity: usize,
    stats: RingStats,
}

/// A bounded single-producer single-consumer ring, shareable across
/// threads.
pub struct SharedRing<T> {
    inner: Arc<Mutex<Inner<T>>>,
}

impl<T> Clone for SharedRing<T> {
    fn clone(&self) -> Self {
        SharedRing {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> SharedRing<T> {
    /// Create a ring holding at most `capacity` items.
    ///
    /// The BBB's 12 KB shared RAM holds 12288 single-byte slot entries;
    /// the paper's firmware splits it between directions.
    pub fn new(capacity: usize) -> SharedRing<T> {
        assert!(capacity > 0, "capacity must be positive");
        SharedRing {
            inner: Arc::new(Mutex::new(Inner {
                buf: std::collections::VecDeque::with_capacity(capacity),
                capacity,
                stats: RingStats::default(),
            })),
        }
    }

    /// Push one item; returns `false` (and counts an overrun) when full.
    pub fn push(&self, item: T) -> bool {
        let mut g = self.inner.lock();
        if g.buf.len() >= g.capacity {
            g.stats.overruns += 1;
            false
        } else {
            g.buf.push_back(item);
            g.stats.pushed += 1;
            true
        }
    }

    /// Pop one item; `None` (and an underrun) when empty.
    pub fn pop(&self) -> Option<T> {
        let mut g = self.inner.lock();
        match g.buf.pop_front() {
            Some(v) => {
                g.stats.popped += 1;
                Some(v)
            }
            None => {
                g.stats.underruns += 1;
                None
            }
        }
    }

    /// Pop up to `n` items without counting an underrun (batch drain).
    pub fn pop_up_to(&self, n: usize) -> Vec<T> {
        let mut g = self.inner.lock();
        let take = n.min(g.buf.len());
        let out: Vec<T> = g.buf.drain(..take).collect();
        g.stats.popped += out.len() as u64;
        out
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().buf.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Free space remaining.
    pub fn free(&self) -> usize {
        let g = self.inner.lock();
        g.capacity - g.buf.len()
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> RingStats {
        self.inner.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let r = SharedRing::new(8);
        for i in 0..5 {
            assert!(r.push(i));
        }
        for i in 0..5 {
            assert_eq!(r.pop(), Some(i));
        }
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn overrun_and_underrun_are_counted() {
        let r = SharedRing::new(2);
        assert!(r.push(1));
        assert!(r.push(2));
        assert!(!r.push(3));
        assert!(!r.push(4));
        r.pop();
        r.pop();
        assert!(r.pop().is_none());
        let s = r.stats();
        assert_eq!(s.pushed, 2);
        assert_eq!(s.popped, 2);
        assert_eq!(s.overruns, 2);
        assert_eq!(s.underruns, 1);
    }

    #[test]
    fn pop_up_to_does_not_count_underrun() {
        let r: SharedRing<u8> = SharedRing::new(4);
        r.push(1);
        assert_eq!(r.pop_up_to(10), vec![1]);
        assert!(r.pop_up_to(10).is_empty());
        assert_eq!(r.stats().underruns, 0);
    }

    #[test]
    fn len_and_free_track() {
        let r = SharedRing::new(3);
        assert_eq!((r.len(), r.free()), (0, 3));
        r.push(1);
        r.push(2);
        assert_eq!((r.len(), r.free()), (2, 1));
        assert!(!r.is_empty());
    }

    #[test]
    fn clones_share_state() {
        let a = SharedRing::new(4);
        let b = a.clone();
        a.push(42);
        assert_eq!(b.pop(), Some(42));
    }

    #[test]
    fn works_across_threads() {
        // The ARM-thread / PRU-thread usage of board.rs in miniature.
        let ring = SharedRing::new(1024);
        let producer = ring.clone();
        let handle = std::thread::spawn(move || {
            let mut sent = 0u32;
            while sent < 10_000 {
                if producer.push(sent) {
                    sent += 1;
                }
            }
        });
        let mut got = Vec::new();
        while got.len() < 10_000 {
            got.extend(ring.pop_up_to(256));
        }
        handle.join().unwrap();
        assert_eq!(got.len(), 10_000);
        // SPSC ordering is preserved.
        assert!(got.windows(2).all(|w| w[1] == w[0] + 1));
    }
}
