//! Board-level compositions: the transmitter and receiver of Fig. 11/12.
//!
//! A [`TransmitterBoard`] is the ARM-side frame producer feeding the
//! PRU's GPIO modulator through the TX ring (Fig. 11's BBB → MOSFET → LED
//! chain, minus the optics, which live in `vlc-channel`). A
//! [`ReceiverBoard`] is the PRU sampler filling the RX ring for the
//! ARM-side demodulator (Fig. 12's photodiode → amplifier → ADC → BBB
//! chain). Both expose the failure counters (ring overruns/underruns)
//! that §5.2's design is built to avoid.

use crate::gpio::GpioModulator;
use crate::pru::AccessMethod;
use crate::sampler::AdcSampler;
use crate::shmem::SharedRing;
use desim::{SimDuration, SimTime};

/// The transmit side: ARM frame producer + PRU GPIO loop.
pub struct TransmitterBoard {
    tx_ring: SharedRing<bool>,
    gpio: GpioModulator,
}

impl TransmitterBoard {
    /// Build with the paper's parameters: PRU access, 8 µs slots, and a
    /// ring sized like the BBB's shared RAM segment (8 K slots).
    pub fn paper_prototype() -> TransmitterBoard {
        let tx_ring = SharedRing::new(8192);
        let gpio = GpioModulator::new(tx_ring.clone(), SimDuration::micros(8), AccessMethod::Pru);
        TransmitterBoard { tx_ring, gpio }
    }

    /// Queue a frame's slot waveform; returns how many slots fit (the ARM
    /// re-offers the rest after draining — here callers check the count).
    pub fn queue_slots(&self, slots: &[bool]) -> usize {
        let mut accepted = 0;
        for &s in slots {
            if !self.tx_ring.push(s) {
                break;
            }
            accepted += 1;
        }
        accepted
    }

    /// Advance the PRU slot loop to `until`.
    pub fn run_until(&mut self, until: SimTime) {
        self.gpio.run_until(until);
    }

    /// The waveform emitted so far.
    pub fn emitted(&self) -> Vec<bool> {
        self.gpio.emitted_slots()
    }

    /// Slots where the ring ran dry (illumination/frame glitches).
    pub fn underruns(&self) -> u64 {
        self.gpio.underruns()
    }

    /// Free slots currently available in the TX ring.
    pub fn ring_free(&self) -> usize {
        self.tx_ring.free()
    }
}

/// The receive side: PRU ADC sampler + ARM consumer.
pub struct ReceiverBoard {
    rx_ring: SharedRing<u16>,
    sampler: AdcSampler,
}

impl ReceiverBoard {
    /// Paper parameters: PRU access, 500 kS/s, 8 K-sample ring.
    pub fn paper_prototype() -> ReceiverBoard {
        let rx_ring = SharedRing::new(8192);
        let sampler = AdcSampler::new(rx_ring.clone(), SimDuration::micros(2), AccessMethod::Pru);
        ReceiverBoard { rx_ring, sampler }
    }

    /// Advance the sampler to `until`, pulling codes from `source`.
    pub fn run_until(&mut self, until: SimTime, source: impl FnMut(SimTime) -> u16) {
        self.sampler.run_until(until, source);
    }

    /// Drain up to `n` samples for ARM-side processing.
    pub fn drain(&self, n: usize) -> Vec<u16> {
        self.rx_ring.pop_up_to(n)
    }

    /// Samples lost to ring overruns.
    pub fn overrun_drops(&self) -> u64 {
        self.sampler.dropped()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transmitter_emits_queued_frame() {
        let mut tx = TransmitterBoard::paper_prototype();
        let frame: Vec<bool> = (0..1000).map(|i| i % 7 < 3).collect();
        assert_eq!(tx.queue_slots(&frame), 1000);
        tx.run_until(SimTime::from_micros(8 * 999));
        assert_eq!(tx.emitted(), frame);
        assert_eq!(tx.underruns(), 0);
    }

    #[test]
    fn receiver_pipelines_samples() {
        let mut rx = ReceiverBoard::paper_prototype();
        let mut code = 0u16;
        rx.run_until(SimTime::from_micros(2 * 499), |_| {
            code = code.wrapping_add(1);
            code
        });
        let got = rx.drain(10_000);
        assert_eq!(got.len(), 500);
        assert_eq!(rx.overrun_drops(), 0);
    }

    #[test]
    fn backpressure_reports_partial_acceptance() {
        let tx = TransmitterBoard::paper_prototype();
        let big = vec![true; 10_000];
        let accepted = tx.queue_slots(&big);
        assert_eq!(accepted, 8192);
        assert_eq!(tx.ring_free(), 0);
    }

    #[test]
    fn threaded_arm_pru_pipeline() {
        // The real system's concurrency in miniature: an "ARM" thread
        // produces slots while the "PRU" (here: this thread) drains them.
        // crossbeam::scope gives us borrowed-thread ergonomics.
        let tx = TransmitterBoard::paper_prototype();
        let ring = tx.tx_ring.clone();
        let total = 50_000u32;
        crossbeam::scope(|s| {
            s.spawn(|_| {
                let mut sent = 0u32;
                while sent < total {
                    if ring.push(sent.is_multiple_of(2)) {
                        sent += 1;
                    } else {
                        std::thread::yield_now();
                    }
                }
            });
            let mut got = 0u32;
            while got < total {
                let batch = tx.tx_ring.pop_up_to(512);
                got += batch.len() as u32;
                if batch.is_empty() {
                    std::thread::yield_now();
                }
            }
        })
        .unwrap();
        assert_eq!(tx.tx_ring.stats().popped, total as u64);
    }
}
