//! The three operating points of the outer code.
//!
//! A profile fixes the parity budget per codeword and a minimum
//! interleaving depth; everything else (codeword count, coded length) is
//! a pure function of the block length, so transmitter and receiver
//! derive identical layouts from the 2-bit profile index in the frame
//! header — no per-frame negotiation.
//!
//! | profile | parity/cw | t/cw | min depth | overhead on a 130 B block |
//! |---|---|---|---|---|
//! | Light  | 8  | 4  | 1 | ~6 % |
//! | Medium | 16 | 8  | 2 | ~25 % |
//! | Heavy  | 32 | 16 | 2 | ~49 % |
//!
//! The ladder Light → Medium → Heavy is what the link layer's
//! degradation controller climbs *before* sacrificing AMPPM tiers: parity
//! costs airtime at the same brightness, while a tier drop costs both
//! rate and payload size.

use crate::rs::MAX_CODEWORD;

/// An outer-code operating point. Encoded in two header bits, so at most
/// four (one pattern is "off" at the frame layer).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FecProfile {
    /// 8 parity symbols per codeword (t = 4), no forced interleaving.
    Light,
    /// 16 parity symbols per codeword (t = 8), depth ≥ 2.
    Medium,
    /// 32 parity symbols per codeword (t = 16), depth ≥ 2.
    Heavy,
}

impl FecProfile {
    /// All profiles, lightest first (ladder order).
    pub const ALL: [FecProfile; 3] = [FecProfile::Light, FecProfile::Medium, FecProfile::Heavy];

    /// Parity symbols per codeword.
    pub fn parity(self) -> usize {
        match self {
            FecProfile::Light => 8,
            FecProfile::Medium => 16,
            FecProfile::Heavy => 32,
        }
    }

    /// Correctable symbol errors per codeword.
    pub fn t(self) -> usize {
        self.parity() / 2
    }

    /// Minimum interleaving depth (codeword count floor).
    pub fn min_depth(self) -> usize {
        match self {
            FecProfile::Light => 1,
            FecProfile::Medium => 2,
            FecProfile::Heavy => 2,
        }
    }

    /// Stable wire index (0..3).
    pub fn index(self) -> u8 {
        match self {
            FecProfile::Light => 0,
            FecProfile::Medium => 1,
            FecProfile::Heavy => 2,
        }
    }

    /// Inverse of [`index`](FecProfile::index).
    pub fn from_index(idx: u8) -> Option<FecProfile> {
        match idx {
            0 => Some(FecProfile::Light),
            1 => Some(FecProfile::Medium),
            2 => Some(FecProfile::Heavy),
            _ => None,
        }
    }

    /// One rung up the parity ladder (saturates at Heavy).
    pub fn escalate(self) -> FecProfile {
        match self {
            FecProfile::Light => FecProfile::Medium,
            _ => FecProfile::Heavy,
        }
    }

    /// Ladder rungs above this profile (how much room the degradation
    /// controller has before it must start dropping modulation tiers).
    pub fn rungs_above(self) -> u8 {
        (FecProfile::ALL.len() - 1) as u8 - self.index()
    }

    /// Codewords an interleaved `data_len`-byte block is dealt across:
    /// enough that every codeword fits in 255 symbols, and at least the
    /// profile's burst-spreading floor. An empty block carries no
    /// codewords (and no parity) at all.
    pub fn codewords_for(self, data_len: usize) -> usize {
        if data_len == 0 {
            return 0;
        }
        let cap = MAX_CODEWORD - self.parity();
        // Depth never exceeds the block length: every lane carries data.
        data_len.div_ceil(cap).max(self.min_depth()).min(data_len)
    }

    /// On-air bytes for a `data_len`-byte block: data plus per-codeword
    /// parity.
    pub fn coded_len(self, data_len: usize) -> usize {
        data_len + self.codewords_for(data_len) * self.parity()
    }

    /// Parity overhead as a fraction of the data (`coded/data - 1`).
    pub fn overhead_ratio(self, data_len: usize) -> f64 {
        if data_len == 0 {
            return 0.0;
        }
        self.coded_len(data_len) as f64 / data_len as f64 - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_roundtrip() {
        for p in FecProfile::ALL {
            assert_eq!(FecProfile::from_index(p.index()), Some(p));
        }
        assert_eq!(FecProfile::from_index(3), None);
        assert_eq!(FecProfile::from_index(255), None);
    }

    #[test]
    fn every_codeword_fits_the_field() {
        for p in FecProfile::ALL {
            for len in [1usize, 130, 247, 248, 4096, 10_000] {
                let c = p.codewords_for(len);
                let longest_lane = len.div_ceil(c);
                assert!(
                    longest_lane + p.parity() <= MAX_CODEWORD,
                    "{p:?} len={len} lane={longest_lane}"
                );
            }
        }
    }

    #[test]
    fn ladder_is_monotone_in_overhead() {
        for len in [64usize, 130, 1024] {
            let o: Vec<f64> = FecProfile::ALL
                .iter()
                .map(|p| p.overhead_ratio(len))
                .collect();
            assert!(o[0] < o[1] && o[1] < o[2], "len={len} {o:?}");
        }
    }

    #[test]
    fn escalate_saturates() {
        assert_eq!(FecProfile::Light.escalate(), FecProfile::Medium);
        assert_eq!(FecProfile::Medium.escalate(), FecProfile::Heavy);
        assert_eq!(FecProfile::Heavy.escalate(), FecProfile::Heavy);
        assert_eq!(FecProfile::Light.rungs_above(), 2);
        assert_eq!(FecProfile::Heavy.rungs_above(), 0);
    }

    #[test]
    fn paper_block_overheads_are_sane() {
        // The paper's 128 B payload + 2 B CRC.
        let len = 130;
        assert!(FecProfile::Light.overhead_ratio(len) < 0.10);
        assert!(FecProfile::Heavy.overhead_ratio(len) < 0.55);
    }
}
