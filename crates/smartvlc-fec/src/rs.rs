//! Shortened Reed–Solomon(255, k) over GF(256): systematic LFSR
//! encoding, and decoding via syndromes → Berlekamp–Massey → Chien
//! search → a Vandermonde solve for the error magnitudes.
//!
//! A codeword of `n = data + parity ≤ 255` bytes corrects up to
//! `t = parity / 2` byte errors anywhere in the codeword. Shortening is
//! implicit: the omitted leading data bytes are zeros on both ends, so no
//! padding ever travels on the wire.
//!
//! Decoding never panics on any input — a received block that is beyond
//! correction (or that Berlekamp–Massey mis-locates under overwhelming
//! corruption) comes back as [`RsError::Unrecoverable`] and the caller
//! falls back to the outer CRC + ARQ.

use crate::gf256::{alpha_pow, alpha_pow_neg, div, inv, mul, poly_eval, poly_eval_low_first, pow};
use std::fmt;

/// Largest codeword the field supports.
pub const MAX_CODEWORD: usize = 255;

/// Decoding failure: more corruption than `parity/2` symbols can carry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RsError {
    /// The error pattern exceeds the code's correction capability.
    Unrecoverable,
}

impl fmt::Display for RsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RsError::Unrecoverable => write!(f, "error pattern exceeds t = parity/2 symbols"),
        }
    }
}

impl std::error::Error for RsError {}

/// A Reed–Solomon code with a fixed parity-symbol count.
#[derive(Clone, Debug)]
pub struct ReedSolomon {
    parity: usize,
    /// Generator polynomial `∏_{i=0}^{parity-1} (x - αⁱ)`, coefficients
    /// highest-degree first, `gen[0] = 1`.
    gen: Vec<u8>,
}

impl ReedSolomon {
    /// Build a code with `parity` check symbols (`1 ≤ parity < 255`).
    pub fn new(parity: usize) -> ReedSolomon {
        assert!(
            (1..MAX_CODEWORD).contains(&parity),
            "parity must be in 1..255"
        );
        let mut gen = vec![1u8];
        for i in 0..parity {
            // gen *= (x + α^i)  (addition is XOR, so -α^i = α^i).
            let root = alpha_pow(i);
            let mut next = vec![0u8; gen.len() + 1];
            for (j, &g) in gen.iter().enumerate() {
                next[j] ^= g;
                next[j + 1] ^= mul(g, root);
            }
            gen = next;
        }
        ReedSolomon { parity, gen }
    }

    /// Parity symbols per codeword.
    pub fn parity(&self) -> usize {
        self.parity
    }

    /// Correctable errors per codeword.
    pub fn t(&self) -> usize {
        self.parity / 2
    }

    /// Systematic encode: compute the `parity` check symbols for `data`
    /// (`data.len() + parity ≤ 255`) into `parity_out`.
    pub fn encode(&self, data: &[u8], parity_out: &mut Vec<u8>) {
        assert!(
            data.len() + self.parity <= MAX_CODEWORD,
            "codeword exceeds 255 symbols"
        );
        parity_out.clear();
        parity_out.resize(self.parity, 0);
        // LFSR division of data(x)·x^parity by the generator.
        for &d in data {
            let coef = d ^ parity_out[0];
            parity_out.rotate_left(1);
            parity_out[self.parity - 1] = 0;
            if coef != 0 {
                for (p, &g) in parity_out.iter_mut().zip(&self.gen[1..]) {
                    *p ^= mul(g, coef);
                }
            }
        }
    }

    /// Correct a received codeword (`data ++ parity`) in place.
    ///
    /// Returns the number of symbol errors corrected (0 for a clean
    /// codeword). On [`RsError::Unrecoverable`] the codeword is left
    /// exactly as received.
    pub fn correct(&self, codeword: &mut [u8]) -> Result<u32, RsError> {
        let n = codeword.len();
        if n <= self.parity || n > MAX_CODEWORD {
            return Err(RsError::Unrecoverable);
        }
        let synd = self.syndromes(codeword);
        if synd.iter().all(|&s| s == 0) {
            return Ok(0);
        }

        // Berlekamp–Massey: shortest LFSR (error locator σ, coefficients
        // lowest-degree first, σ[0] = 1) consistent with the syndromes.
        let sigma = berlekamp_massey(&synd);
        let nu = sigma.len() - 1;
        if nu == 0 || nu > self.t() {
            return Err(RsError::Unrecoverable);
        }

        // Chien search: coefficient degrees j where σ(α^{-j}) = 0.
        let mut degrees = Vec::with_capacity(nu);
        for j in 0..n {
            if poly_eval_low_first(&sigma, alpha_pow_neg(j)) == 0 {
                degrees.push(j);
            }
        }
        if degrees.len() != nu {
            return Err(RsError::Unrecoverable);
        }

        // Magnitudes: solve the ν×ν Vandermonde system
        // Σ_k e_k·X_k^i = S_i with X_k = α^{degree_k}.
        let mut a = vec![vec![0u8; nu + 1]; nu];
        for (i, row) in a.iter_mut().enumerate() {
            for (k, &deg) in degrees.iter().enumerate() {
                row[k] = pow(alpha_pow(deg), i);
            }
            row[nu] = synd[i];
        }
        let magnitudes = solve(&mut a).ok_or(RsError::Unrecoverable)?;

        // Apply, then verify: a mis-located solution must not leak out as
        // a "corrected" codeword.
        for (&deg, &e) in degrees.iter().zip(&magnitudes) {
            codeword[n - 1 - deg] ^= e;
        }
        if self.syndromes(codeword).iter().any(|&s| s != 0) {
            for (&deg, &e) in degrees.iter().zip(&magnitudes) {
                codeword[n - 1 - deg] ^= e; // roll back
            }
            return Err(RsError::Unrecoverable);
        }
        Ok(nu as u32)
    }

    fn syndromes(&self, codeword: &[u8]) -> Vec<u8> {
        (0..self.parity)
            .map(|i| poly_eval(codeword, alpha_pow(i)))
            .collect()
    }
}

/// Berlekamp–Massey over GF(256); returns the error locator polynomial,
/// coefficients lowest-degree first.
fn berlekamp_massey(synd: &[u8]) -> Vec<u8> {
    let mut sigma = vec![1u8];
    let mut prev = vec![1u8];
    let mut l = 0usize;
    let mut m = 1usize;
    let mut prev_delta = 1u8;
    for (idx, &s) in synd.iter().enumerate() {
        let mut delta = s;
        for i in 1..=l.min(sigma.len() - 1) {
            delta ^= mul(sigma[i], synd[idx - i]);
        }
        if delta == 0 {
            m += 1;
        } else if 2 * l <= idx {
            let snapshot = sigma.clone();
            let coef = div(delta, prev_delta);
            if sigma.len() < prev.len() + m {
                sigma.resize(prev.len() + m, 0);
            }
            for (i, &p) in prev.iter().enumerate() {
                sigma[i + m] ^= mul(coef, p);
            }
            l = idx + 1 - l;
            prev = snapshot;
            prev_delta = delta;
            m = 1;
        } else {
            let coef = div(delta, prev_delta);
            if sigma.len() < prev.len() + m {
                sigma.resize(prev.len() + m, 0);
            }
            for (i, &p) in prev.iter().enumerate() {
                sigma[i + m] ^= mul(coef, p);
            }
            m += 1;
        }
    }
    // Trim trailing zeros so sigma.len()-1 is the true degree.
    while sigma.len() > 1 && *sigma.last().unwrap() == 0 {
        sigma.pop();
    }
    sigma
}

/// Gaussian elimination on an augmented ν×(ν+1) system over GF(256).
/// Returns `None` when the matrix is singular.
fn solve(a: &mut [Vec<u8>]) -> Option<Vec<u8>> {
    let n = a.len();
    for col in 0..n {
        let pivot = (col..n).find(|&r| a[r][col] != 0)?;
        a.swap(col, pivot);
        let piv_inv = inv(a[col][col]);
        for v in a[col].iter_mut() {
            *v = mul(*v, piv_inv);
        }
        let pivot_row = a[col].clone();
        for (r, row) in a.iter_mut().enumerate() {
            if r != col && row[col] != 0 {
                let factor = row[col];
                for (dst, &src) in row.iter_mut().zip(&pivot_row).skip(col) {
                    *dst ^= mul(factor, src);
                }
            }
        }
    }
    Some(a.iter().map(|row| row[n]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codeword(rs: &ReedSolomon, data: &[u8]) -> Vec<u8> {
        let mut parity = Vec::new();
        rs.encode(data, &mut parity);
        let mut cw = data.to_vec();
        cw.extend_from_slice(&parity);
        cw
    }

    /// Tiny deterministic generator for test corruption patterns.
    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    #[test]
    fn clean_codeword_has_zero_syndromes() {
        let rs = ReedSolomon::new(16);
        let data: Vec<u8> = (0..100).map(|i| (i * 7 + 3) as u8).collect();
        let mut cw = codeword(&rs, &data);
        assert_eq!(rs.correct(&mut cw), Ok(0));
        assert_eq!(&cw[..100], &data[..]);
    }

    #[test]
    fn corrects_up_to_t_errors_everywhere() {
        let rs = ReedSolomon::new(16);
        let data: Vec<u8> = (0..120).map(|i| (i * 31 % 251) as u8).collect();
        let clean = codeword(&rs, &data);
        let mut state = 0x1234_5678_9abc_def0u64;
        for n_err in 1..=rs.t() {
            let mut cw = clean.clone();
            // n_err distinct positions, including parity positions.
            let mut hit = vec![false; cw.len()];
            let mut placed = 0;
            while placed < n_err {
                let pos = (xorshift(&mut state) as usize) % cw.len();
                if !hit[pos] {
                    hit[pos] = true;
                    cw[pos] ^= (xorshift(&mut state) as u8) | 1;
                    placed += 1;
                }
            }
            assert_eq!(rs.correct(&mut cw), Ok(n_err as u32), "n_err={n_err}");
            assert_eq!(cw, clean, "n_err={n_err}");
        }
    }

    #[test]
    fn burst_of_t_consecutive_errors_corrects() {
        let rs = ReedSolomon::new(32);
        let data: Vec<u8> = (0..200).map(|i| (i * 13 % 256) as u8).collect();
        let clean = codeword(&rs, &data);
        let mut cw = clean.clone();
        for (i, slot) in cw.iter_mut().enumerate().skip(40).take(rs.t()) {
            *slot ^= (i as u8).wrapping_mul(97) | 1;
        }
        assert_eq!(rs.correct(&mut cw), Ok(rs.t() as u32));
        assert_eq!(cw, clean);
    }

    #[test]
    fn beyond_t_errors_reported_not_miscorrected() {
        let rs = ReedSolomon::new(8);
        let data: Vec<u8> = (0..50).map(|i| i as u8).collect();
        let clean = codeword(&rs, &data);
        let mut state = 0xdead_beef_cafe_f00du64;
        let mut failures = 0;
        for trial in 0..50 {
            let mut cw = clean.clone();
            // 2t errors: far beyond capability.
            for _ in 0..rs.parity() {
                let pos = (xorshift(&mut state) as usize) % cw.len();
                cw[pos] ^= (xorshift(&mut state) as u8) | 1;
            }
            match rs.correct(&mut cw) {
                Err(RsError::Unrecoverable) => failures += 1,
                Ok(_) => {
                    // A decoder may land on a *different* valid codeword —
                    // that is information-theoretically unavoidable — but
                    // it must then be self-consistent (zero syndromes).
                    let mut recheck = cw.clone();
                    assert_eq!(rs.correct(&mut recheck), Ok(0), "trial={trial}");
                }
            }
        }
        assert!(failures > 25, "only {failures}/50 flagged unrecoverable");
    }

    #[test]
    fn shortened_lengths_all_roundtrip() {
        for parity in [4usize, 8, 16, 32] {
            let rs = ReedSolomon::new(parity);
            for len in [1usize, 2, 5, 17, 64, 255 - parity] {
                let data: Vec<u8> = (0..len).map(|i| (i * 89 + parity) as u8).collect();
                let clean = codeword(&rs, &data);
                let mut cw = clean.clone();
                // One error in the middle always corrects.
                cw[len / 2] ^= 0x5a;
                assert_eq!(rs.correct(&mut cw), Ok(1), "parity={parity} len={len}");
                assert_eq!(cw, clean);
            }
        }
    }

    #[test]
    fn unrecoverable_leaves_input_untouched() {
        let rs = ReedSolomon::new(4);
        let data: Vec<u8> = (10..60).map(|i| i as u8).collect();
        let mut cw = codeword(&rs, &data);
        for b in cw.iter_mut().take(20) {
            *b = b.wrapping_add(101);
        }
        let garbled = cw.clone();
        if rs.correct(&mut cw) == Err(RsError::Unrecoverable) {
            assert_eq!(cw, garbled, "failed decode must not mutate");
        }
    }

    #[test]
    fn degenerate_lengths_error_cleanly() {
        let rs = ReedSolomon::new(8);
        assert_eq!(rs.correct(&mut []), Err(RsError::Unrecoverable));
        assert_eq!(rs.correct(&mut [0u8; 8]), Err(RsError::Unrecoverable));
        let mut too_long = vec![0u8; 256];
        assert_eq!(rs.correct(&mut too_long), Err(RsError::Unrecoverable));
    }
}
