//! GF(2⁸) arithmetic over the primitive polynomial `x⁸+x⁴+x³+x²+1`
//! (0x11d), the field every byte-oriented Reed–Solomon code lives in.
//!
//! Multiplication goes through compile-time log/antilog tables keyed on
//! the primitive element α = 2; the antilog table is doubled so a
//! log-sum never needs a modulo reduction on the hot path.

/// The primitive polynomial (with the implicit x⁸ term as bit 8).
pub const PRIMITIVE_POLY: u16 = 0x11d;

/// α^i for i in 0..510 (two periods, so `EXP[log a + log b]` is in range).
pub const EXP: [u8; 512] = build_exp();

/// log_α of each nonzero element; `LOG[0]` is unused and holds 0.
pub const LOG: [u8; 256] = build_log();

const fn build_exp() -> [u8; 512] {
    let mut exp = [0u8; 512];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < 255 {
        exp[i] = x as u8;
        exp[i + 255] = x as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= PRIMITIVE_POLY;
        }
        i += 1;
    }
    exp
}

const fn build_log() -> [u8; 256] {
    let exp = build_exp();
    let mut log = [0u8; 256];
    let mut i = 0;
    while i < 255 {
        log[exp[i] as usize] = i as u8;
        i += 1;
    }
    log
}

/// Field multiplication.
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        0
    } else {
        EXP[LOG[a as usize] as usize + LOG[b as usize] as usize]
    }
}

/// Field division; `b` must be nonzero.
#[inline]
pub fn div(a: u8, b: u8) -> u8 {
    debug_assert!(b != 0, "division by zero in GF(256)");
    if a == 0 {
        0
    } else {
        EXP[(LOG[a as usize] as usize + 255 - LOG[b as usize] as usize) % 255]
    }
}

/// Multiplicative inverse; `a` must be nonzero.
#[inline]
pub fn inv(a: u8) -> u8 {
    debug_assert!(a != 0, "inverse of zero in GF(256)");
    EXP[(255 - LOG[a as usize] as usize) % 255]
}

/// α^e for any exponent (reduced mod 255).
#[inline]
pub fn alpha_pow(e: usize) -> u8 {
    EXP[e % 255]
}

/// α^{-e} for any exponent.
#[inline]
pub fn alpha_pow_neg(e: usize) -> u8 {
    EXP[(255 - (e % 255)) % 255]
}

/// `base^e` by repeated log addition.
#[inline]
pub fn pow(base: u8, e: usize) -> u8 {
    if e == 0 {
        return 1;
    }
    if base == 0 {
        return 0;
    }
    EXP[(LOG[base as usize] as usize * e) % 255]
}

/// Evaluate a polynomial with coefficients highest-degree first (Horner).
#[inline]
pub fn poly_eval(coeffs_high_first: &[u8], x: u8) -> u8 {
    let mut acc = 0u8;
    for &c in coeffs_high_first {
        acc = mul(acc, x) ^ c;
    }
    acc
}

/// Evaluate a polynomial with coefficients lowest-degree first.
#[inline]
pub fn poly_eval_low_first(coeffs_low_first: &[u8], x: u8) -> u8 {
    let mut acc = 0u8;
    for &c in coeffs_low_first.iter().rev() {
        acc = mul(acc, x) ^ c;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_generates_the_whole_field() {
        let mut seen = [false; 256];
        for (i, &e) in EXP.iter().enumerate().take(255) {
            let v = e as usize;
            assert!(!seen[v], "α^{i} repeats");
            seen[v] = true;
        }
        assert!(!seen[0], "α^i is never zero");
        assert_eq!(seen.iter().filter(|&&s| s).count(), 255);
    }

    #[test]
    fn log_inverts_exp() {
        for i in 0..255usize {
            assert_eq!(LOG[EXP[i] as usize] as usize, i);
        }
    }

    #[test]
    fn mul_matches_schoolbook() {
        // Carry-less schoolbook multiply reduced by the primitive poly.
        fn slow_mul(a: u16, b: u16) -> u8 {
            let mut acc: u16 = 0;
            for bit in 0..8 {
                if b & (1 << bit) != 0 {
                    acc ^= a << bit;
                }
            }
            for bit in (8..16).rev() {
                if acc & (1 << bit) != 0 {
                    acc ^= PRIMITIVE_POLY << (bit - 8);
                }
            }
            acc as u8
        }
        for a in [0u8, 1, 2, 3, 0x53, 0xca, 0xff] {
            for b in [0u8, 1, 2, 0x8e, 0xb1, 0xff] {
                assert_eq!(mul(a, b), slow_mul(a as u16, b as u16), "{a:#x}*{b:#x}");
            }
        }
    }

    #[test]
    fn division_and_inverse_agree() {
        for a in 1..=255u8 {
            assert_eq!(mul(a, inv(a)), 1, "a={a}");
            for b in [1u8, 2, 7, 0x1d, 0xfe] {
                assert_eq!(mul(div(a, b), b), a, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn pow_is_repeated_mul() {
        let mut acc = 1u8;
        for e in 0..20 {
            assert_eq!(pow(3, e), acc);
            acc = mul(acc, 3);
        }
        assert_eq!(pow(0, 0), 1);
        assert_eq!(pow(0, 5), 0);
    }

    #[test]
    fn poly_eval_conventions_agree() {
        // 3x² + 2x + 1 at x = 5, both coefficient orders.
        let high = [3u8, 2, 1];
        let low = [1u8, 2, 3];
        let want = mul(3, mul(5, 5)) ^ mul(2, 5) ^ 1;
        assert_eq!(poly_eval(&high, 5), want);
        assert_eq!(poly_eval_low_first(&low, 5), want);
    }
}
