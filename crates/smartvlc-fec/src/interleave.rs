//! Block interleaving across Reed–Solomon codewords.
//!
//! The payload block is dealt round-robin over `c` codewords: byte `i`
//! belongs to codeword `i mod c`. Because the systematic symbols travel
//! in their original order, the on-air layout *is* the column-wise
//! interleaved order — a burst of `B` consecutive corrupted bytes lands
//! on any single codeword at most `⌈B / c⌉` times. The parity symbols
//! are appended column-interleaved for the same reason.
//!
//! Wire layout for a `len`-byte block under a profile with `c` codewords
//! and `p` parity symbols each:
//!
//! ```text
//! | data[0..len] (original order) | par₀[0] par₁[0] … par_{c-1}[0] | par₀[1] … |
//! ```
//!
//! The coded length is `len + c·p`, computable by both ends from the
//! header alone — no length field is spent on the code.

use crate::profile::FecProfile;
use crate::rs::ReedSolomon;

/// Result of decoding one interleaved block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FecDecode {
    /// The recovered data block (corrected in place where possible; on
    /// codeword failure the uncorrected systematic bytes pass through so
    /// the outer CRC delivers the verdict).
    pub data: Vec<u8>,
    /// Symbol errors corrected across all codewords.
    pub corrected: u32,
    /// Codewords whose error pattern exceeded the correction capability.
    pub failed_codewords: u32,
    /// True when every codeword decoded (all syndromes zero after
    /// correction); the data is then exactly what was encoded.
    pub ok: bool,
}

/// Encode `data` under `profile`: returns `data ++ interleaved parity`.
pub fn encode(profile: FecProfile, data: &[u8]) -> Vec<u8> {
    let c = profile.codewords_for(data.len());
    let p = profile.parity();
    let rs = ReedSolomon::new(p);
    let mut out = Vec::with_capacity(data.len() + c * p);
    out.extend_from_slice(data);
    let mut parities: Vec<Vec<u8>> = Vec::with_capacity(c);
    let mut lane = Vec::new();
    let mut parity = Vec::new();
    for j in 0..c {
        lane.clear();
        lane.extend(data.iter().skip(j).step_by(c));
        rs.encode(&lane, &mut parity);
        parities.push(parity.clone());
    }
    for r in 0..p {
        for par in &parities {
            out.push(par[r]);
        }
    }
    out
}

/// Decode an interleaved block of [`coded_len`](FecProfile::coded_len)
/// bytes carrying `data_len` data bytes. Never panics; malformed input
/// lengths yield `ok = false` with the systematic prefix passed through.
pub fn decode(profile: FecProfile, coded: &[u8], data_len: usize) -> FecDecode {
    let c = profile.codewords_for(data_len);
    let p = profile.parity();
    let expected = profile.coded_len(data_len);
    if coded.len() != expected {
        let mut data = vec![0u8; data_len];
        let take = data_len.min(coded.len());
        data[..take].copy_from_slice(&coded[..take]);
        return FecDecode {
            data,
            corrected: 0,
            failed_codewords: c as u32,
            ok: false,
        };
    }
    let rs = ReedSolomon::new(p);
    let mut data = coded[..data_len].to_vec();
    let mut corrected = 0u32;
    let mut failed = 0u32;
    let mut cw = Vec::new();
    for j in 0..c {
        cw.clear();
        cw.extend(data.iter().skip(j).step_by(c));
        let lane_len = cw.len();
        cw.extend((0..p).map(|r| coded[data_len + r * c + j]));
        match rs.correct(&mut cw) {
            Ok(n) => {
                corrected += n;
                if n > 0 {
                    // Scatter the corrected lane back into block order.
                    for (k, &b) in cw[..lane_len].iter().enumerate() {
                        data[j + k * c] = b;
                    }
                }
            }
            Err(_) => failed += 1,
        }
    }
    FecDecode {
        data,
        corrected,
        failed_codewords: failed,
        ok: failed == 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 37 + 11) as u8).collect()
    }

    #[test]
    fn coded_len_matches_encoder_output() {
        for profile in FecProfile::ALL {
            for len in [0usize, 1, 2, 16, 130, 247, 248, 600, 2048] {
                let coded = encode(profile, &block(len));
                assert_eq!(coded.len(), profile.coded_len(len), "{profile:?} len={len}");
            }
        }
    }

    #[test]
    fn systematic_prefix_is_the_data() {
        let data = block(130);
        for profile in FecProfile::ALL {
            let coded = encode(profile, &data);
            assert_eq!(&coded[..130], &data[..], "{profile:?}");
        }
    }

    #[test]
    fn clean_roundtrip_every_profile() {
        for profile in FecProfile::ALL {
            for len in [0usize, 1, 17, 130, 300, 1024] {
                let data = block(len);
                let out = decode(profile, &encode(profile, &data), len);
                assert!(out.ok, "{profile:?} len={len}");
                assert_eq!(out.corrected, 0);
                assert_eq!(out.data, data);
            }
        }
    }

    #[test]
    fn burst_spreads_across_codewords() {
        // A contiguous burst of c·t corrupted bytes lands t-per-codeword:
        // exactly at capability, so it must decode.
        let data = block(130);
        for profile in FecProfile::ALL {
            let c = profile.codewords_for(data.len());
            let t = profile.parity() / 2;
            let mut coded = encode(profile, &data);
            let burst = c * t;
            for b in coded.iter_mut().skip(20).take(burst) {
                *b ^= 0xa5;
            }
            let out = decode(profile, &coded, data.len());
            assert!(out.ok, "{profile:?} burst={burst}");
            assert_eq!(out.corrected, burst as u32);
            assert_eq!(out.data, data);
        }
    }

    #[test]
    fn burst_in_the_parity_region_also_corrects() {
        let data = block(130);
        let profile = FecProfile::Medium;
        let c = profile.codewords_for(data.len());
        let t = profile.parity() / 2;
        let mut coded = encode(profile, &data);
        let start = data.len() + 3;
        for b in coded.iter_mut().skip(start).take(c * t - c) {
            *b ^= 0x3c;
        }
        let out = decode(profile, &coded, data.len());
        assert!(out.ok);
        assert_eq!(out.data, data);
    }

    #[test]
    fn overwhelming_corruption_reports_failure_and_passes_data_through() {
        let data = block(130);
        let profile = FecProfile::Light;
        let mut coded = encode(profile, &data);
        for b in coded.iter_mut() {
            *b = b.wrapping_mul(57).wrapping_add(91);
        }
        let out = decode(profile, &coded, data.len());
        assert!(!out.ok);
        assert!(out.failed_codewords > 0);
        // The systematic prefix of whatever arrived passes through.
        assert_eq!(out.data.len(), data.len());
    }

    #[test]
    fn wrong_length_input_never_panics() {
        let data = block(64);
        let profile = FecProfile::Heavy;
        let coded = encode(profile, &data);
        for cut in [0usize, 1, 63, 64, coded.len() - 1] {
            let out = decode(profile, &coded[..cut], data.len());
            assert!(!out.ok, "cut={cut}");
            assert_eq!(out.data.len(), data.len());
        }
        let mut padded = coded.clone();
        padded.push(0);
        assert!(!decode(profile, &padded, data.len()).ok);
    }
}
