//! # smartvlc-fec — dimming-aware forward error correction
//!
//! A shortened Reed–Solomon(255, k) outer code over GF(256) with a block
//! interleaver, sized for SmartVLC's frame blocks. The code operates on
//! *bytes before modulation*: AMPPM's constant-weight super-symbols carry
//! parity symbols at exactly the same dimming level as data symbols, so
//! raising the FEC overhead buys robustness with airtime, never with
//! brightness — the illumination contract (Goal 1 of the paper) is
//! untouchable by the error-control layer.
//!
//! Why an outer byte code: occlusion and saturation faults corrupt
//! *slots*, the demodulator zero-fills the bytes of each constant-weight
//! symbol that fails its integrity check, and those bytes are contiguous
//! — a classic burst-erasure shape. Interleaving deals the block across
//! codewords so a burst of `B` bytes costs each codeword only `⌈B/c⌉`
//! errors (cf. the interleaving argument in "Noise Mitigation Methods for
//! Digital VLC"), and the Reed–Solomon parity corrects them in place,
//! saving the CRC + ARQ round trip.
//!
//! # Example
//!
//! ```
//! use smartvlc_fec::{decode, encode, FecProfile};
//!
//! let data: Vec<u8> = (0..130u32).map(|i| (i * 7) as u8).collect();
//! let mut coded = encode(FecProfile::Medium, &data);
//! // A 24-byte burst — with depth-2 interleaving, 12 errors per
//! // codeword, over t = 8 … so escalate: Heavy shrugs it off.
//! let mut heavy = encode(FecProfile::Heavy, &data);
//! for b in heavy.iter_mut().skip(10).take(24) {
//!     *b ^= 0xff;
//! }
//! let out = decode(FecProfile::Heavy, &heavy, data.len());
//! assert!(out.ok);
//! assert_eq!(out.data, data);
//! assert_eq!(out.corrected, 24);
//! # let _ = coded.pop();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gf256;
pub mod interleave;
pub mod profile;
pub mod rs;

pub use interleave::{decode, encode, FecDecode};
pub use profile::FecProfile;
pub use rs::{ReedSolomon, RsError};

/// The kill switch: `SMARTVLC_FEC=off` (or `0`) force-disables coding
/// process-wide while keeping every other code path and RNG draw
/// identical — the artifact-compatibility lever CI pulls to check that
/// the ARQ-only numbers are reproducible from the same binary.
pub fn enabled_from_env() -> bool {
    !matches!(
        std::env::var("SMARTVLC_FEC").as_deref(),
        Ok("off") | Ok("0")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_gate_defaults_on() {
        // The variable is not set in the test environment.
        if std::env::var("SMARTVLC_FEC").is_err() {
            assert!(enabled_from_env());
        }
    }
}
