//! Property tests for the Reed–Solomon + interleaver pipeline.
//!
//! Two invariants the hybrid-ARQ design rests on:
//!
//! 1. **Totality** — decoding *arbitrarily* corrupted codewords never
//!    panics. Whatever bytes arrive, the decoder returns data of the
//!    right length plus an honest `ok` flag; the outer CRC (exercised in
//!    `smartvlc-link`'s chaos proptests) delivers the final verdict.
//! 2. **Correction guarantee** — encode → corrupt ≤ t symbols per
//!    codeword → decode round-trips bit-exactly at every shortened
//!    length, for every profile.

use proptest::prelude::*;
use smartvlc_fec::{decode, encode, FecProfile, ReedSolomon};

fn profile_from(idx: u8) -> FecProfile {
    FecProfile::ALL[idx as usize % FecProfile::ALL.len()]
}

proptest! {
    /// Arbitrary garbage of arbitrary length: decode never panics, and
    /// the output block always has the requested length.
    #[test]
    fn decoding_garbage_never_panics(
        profile_idx in any::<u8>(),
        data_len in 0usize..600,
        garbage in proptest::collection::vec(any::<u8>(), 0..900),
    ) {
        let profile = profile_from(profile_idx);
        let out = decode(profile, &garbage, data_len);
        prop_assert_eq!(out.data.len(), data_len);
        // An input of the wrong length can never report clean decode.
        if garbage.len() != profile.coded_len(data_len) {
            prop_assert!(!out.ok);
        }
    }

    /// Arbitrary corruption of a *valid-length* coded block: never
    /// panics; when the decoder claims `ok`, re-encoding its output must
    /// reproduce a codeword-consistent block (RS decoders may land on a
    /// different valid codeword under overwhelming corruption — that is
    /// what the outer CRC is for — but they must stay self-consistent).
    #[test]
    fn corrupted_codewords_decode_totally(
        profile_idx in any::<u8>(),
        data in proptest::collection::vec(any::<u8>(), 1..300),
        corruption in proptest::collection::vec((any::<u16>(), any::<u8>()), 0..80),
    ) {
        let profile = profile_from(profile_idx);
        let mut coded = encode(profile, &data);
        let n = coded.len();
        for (pos, val) in corruption {
            coded[pos as usize % n] ^= val;
        }
        let out = decode(profile, &coded, data.len());
        prop_assert_eq!(out.data.len(), data.len());
        if out.ok {
            let recheck = decode(profile, &encode(profile, &out.data), data.len());
            prop_assert!(recheck.ok);
            prop_assert_eq!(recheck.corrected, 0);
        }
    }

    /// The correction guarantee: at most t errors per codeword (placed
    /// anywhere, data or parity) always round-trips bit-exactly, for all
    /// shortened lengths and profiles.
    #[test]
    fn within_t_corruption_roundtrips_exactly(
        profile_idx in any::<u8>(),
        data in proptest::collection::vec(any::<u8>(), 1..520),
        err_seed in any::<u64>(),
    ) {
        let profile = profile_from(profile_idx);
        let c = profile.codewords_for(data.len());
        let t = profile.t();
        let mut coded = encode(profile, &data);
        // Deal ≤ t errors into every codeword's lane. Lane j owns data
        // bytes j, j+c, … and parity bytes data_len + r·c + j.
        let mut rng = err_seed;
        let mut step = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let mut injected = 0u32;
        for j in 0..c {
            let lane_data = (data.len() + c - 1 - j) / c;
            let lane_total = lane_data + profile.parity();
            let n_err = (step() as usize) % (t + 1);
            let mut hit = vec![false; lane_total];
            let mut placed = 0;
            while placed < n_err {
                let k = (step() as usize) % lane_total;
                if hit[k] {
                    continue;
                }
                hit[k] = true;
                let byte_idx = if k < lane_data {
                    j + k * c
                } else {
                    data.len() + (k - lane_data) * c + j
                };
                coded[byte_idx] ^= (step() as u8) | 1;
                placed += 1;
            }
            injected += n_err as u32;
        }
        let out = decode(profile, &coded, data.len());
        prop_assert!(out.ok);
        prop_assert_eq!(out.corrected, injected);
        prop_assert_eq!(out.data, data);
    }

    /// The raw code, without interleaving: ≤ t random errors always
    /// correct, for every shortened length the field admits.
    #[test]
    fn raw_rs_roundtrips_all_shortened_lengths(
        parity_pick in 0usize..3,
        len_frac in any::<u16>(),
        err_seed in any::<u64>(),
    ) {
        let parity = [8usize, 16, 32][parity_pick];
        let rs = ReedSolomon::new(parity);
        let max_data = 255 - parity;
        let data_len = 1 + (len_frac as usize) % max_data;
        let data: Vec<u8> = (0..data_len).map(|i| (i * 193 + 7) as u8).collect();
        let mut parity_out = Vec::new();
        rs.encode(&data, &mut parity_out);
        let mut cw = data.clone();
        cw.extend_from_slice(&parity_out);
        let clean = cw.clone();
        let mut rng = err_seed | 1;
        let mut step = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let n_err = (step() as usize) % (rs.t() + 1);
        let mut hit = vec![false; cw.len()];
        let mut placed = 0;
        while placed < n_err {
            let k = (step() as usize) % cw.len();
            if hit[k] {
                continue;
            }
            hit[k] = true;
            cw[k] ^= (step() as u8) | 1;
            placed += 1;
        }
        prop_assert_eq!(rs.correct(&mut cw), Ok(n_err as u32));
        prop_assert_eq!(cw, clean);
    }
}
