//! The `smartvlc` command-line tool — see `smartvlc::cli` for the
//! commands and `smartvlc --help` for usage.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{}", smartvlc::cli::USAGE);
        return;
    }
    match smartvlc::cli::run(&args) {
        Ok(out) => print!("{out}"),
        Err(err) => {
            eprintln!("{err}");
            std::process::exit(2);
        }
    }
}
