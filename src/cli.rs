//! The `smartvlc` command-line tool.
//!
//! Command logic lives here (returning strings) so it is unit-testable;
//! `src/bin/smartvlc.rs` is a thin I/O shell around [`run`].

use crate::prelude::*;
use smartvlc_core::flicker::{FlickerAuditor, FlickerRules};
use smartvlc_sim::perception::{StudyCondition, Viewing};
use smartvlc_sim::report::markdown_table;

/// Top-level usage text.
pub const USAGE: &str = "\
smartvlc — SmartVLC (CoNEXT'17) reproduction toolkit

USAGE:
  smartvlc plan <level>                 best AMPPM super-symbol for a dimming level
  smartvlc envelope                     print the throughput-envelope hull
  smartvlc sweep [scheme]               raw-rate sweep across the 17 paper levels
                                        (schemes: amppm mppm ookct vppm oppm darklight)
  smartvlc simulate <distance_m> [secs] end-to-end link run at a distance
  smartvlc audit <waveform|@file>       flicker-audit a waveform of 0/1 characters
                                        (@path reads the waveform from a file)
  smartvlc study                        run the virtual 20-subject user study
  smartvlc day [hours]                  planning-level diurnal run + energy bill
  smartvlc broadcast <level>            one luminaire, six office seats
";

/// Parse and execute one invocation; returns the text to print.
pub fn run(args: &[String]) -> Result<String, String> {
    match args.first().map(String::as_str) {
        Some("plan") => {
            let level: f64 = args
                .get(1)
                .ok_or("plan: missing <level>")?
                .parse()
                .map_err(|e| format!("plan: bad level: {e}"))?;
            cmd_plan(level)
        }
        Some("envelope") => cmd_envelope(),
        Some("sweep") => cmd_sweep(args.get(1).map(String::as_str).unwrap_or("amppm")),
        Some("simulate") => {
            let d: f64 = args
                .get(1)
                .ok_or("simulate: missing <distance_m>")?
                .parse()
                .map_err(|e| format!("simulate: bad distance: {e}"))?;
            let secs: f64 = match args.get(2) {
                Some(s) => s.parse().map_err(|e| format!("simulate: bad secs: {e}"))?,
                None => 2.0,
            };
            cmd_simulate(d, secs)
        }
        Some("audit") => {
            let wf = args.get(1).ok_or("audit: missing <waveform>")?;
            cmd_audit(wf)
        }
        Some("study") => cmd_study(),
        Some("day") => {
            let hours: f64 = match args.get(1) {
                Some(h) => h.parse().map_err(|e| format!("day: bad hours: {e}"))?,
                None => 24.0,
            };
            cmd_day(hours)
        }
        Some("broadcast") => {
            let level: f64 = args
                .get(1)
                .ok_or("broadcast: missing <level>")?
                .parse()
                .map_err(|e| format!("broadcast: bad level: {e}"))?;
            cmd_broadcast(level)
        }
        Some(other) => Err(format!("unknown command {other:?}\n\n{USAGE}")),
        None => Err(USAGE.to_string()),
    }
}

fn cmd_plan(level: f64) -> Result<String, String> {
    let l = DimmingLevel::new(level).ok_or("level must be in [0, 1]")?;
    let planner = AmppmPlanner::new(SystemConfig::default()).map_err(|e| e.to_string())?;
    let plan = planner.plan(l).map_err(|e| e.to_string())?;
    Ok(format!(
        "target level       {:.4}\n\
         super-symbol       {:?}\n\
         achieved level     {:.4}\n\
         slots per super    {}\n\
         normalized rate    {:.4} bits/slot\n\
         predicted goodput  {:.1} Kbps (at ftx = 125 kHz)\n\
         expected SER       {:.2e}\n",
        l.value(),
        plan.super_symbol,
        plan.achieved.value(),
        plan.super_symbol.n_super(),
        plan.norm_rate,
        plan.rate_bps / 1e3,
        plan.expected_ser,
    ))
}

fn cmd_envelope() -> Result<String, String> {
    let planner = AmppmPlanner::new(SystemConfig::default()).map_err(|e| e.to_string())?;
    let rows: Vec<Vec<String>> = planner
        .envelope()
        .points()
        .iter()
        .map(|c| {
            vec![
                format!("{}", c.pattern),
                format!("{:.4}", c.dimming()),
                format!("{:.4}", c.norm_rate),
                format!("{:.2e}", c.ser),
            ]
        })
        .collect();
    Ok(markdown_table(
        &["pattern", "dimming", "norm rate", "SER"],
        &rows,
    ))
}

fn parse_scheme(name: &str) -> Result<SchemeKind, String> {
    match name {
        "amppm" => Ok(SchemeKind::Amppm),
        "mppm" => Ok(SchemeKind::Mppm(20)),
        "ookct" => Ok(SchemeKind::OokCt),
        "vppm" => Ok(SchemeKind::Vppm(10)),
        "oppm" => Ok(SchemeKind::Oppm(10)),
        "darklight" => Ok(SchemeKind::Darklight),
        other => Err(format!("unknown scheme {other:?}")),
    }
}

fn cmd_sweep(scheme_name: &str) -> Result<String, String> {
    let scheme = parse_scheme(scheme_name)?;
    let cfg = SystemConfig::default();
    let mut codec = FrameCodec::new(cfg.clone()).map_err(|e| e.to_string())?;
    let mut rows = Vec::new();
    for i in 2..=18 {
        let l = DimmingLevel::new(i as f64 / 20.0).unwrap();
        let d = scheme.descriptor(&cfg, l, 0);
        let rate = codec
            .modem_for(d)
            .map(|m| {
                let table = combinat::BinomialTable::new(512);
                m.norm_rate(&table) * cfg.ftx_hz as f64 / 1e3
            })
            .unwrap_or(0.0);
        rows.push(vec![format!("{:.2}", l.value()), format!("{rate:.1}")]);
    }
    Ok(format!(
        "raw modulation rate, scheme = {scheme_name}\n{}",
        markdown_table(&["level", "Kbps"], &rows)
    ))
}

fn cmd_simulate(distance_m: f64, secs: f64) -> Result<String, String> {
    if !(0.1..=20.0).contains(&distance_m) {
        return Err("distance must be in [0.1, 20] m".into());
    }
    let mut cfg = LinkConfig::paper_static(distance_m, SchemeKind::Amppm, 1);
    cfg.duration = desim::SimDuration::from_secs_f64(secs.clamp(0.1, 300.0));
    let mut sim = LinkSimulation::new(cfg).map_err(|e| e.to_string())?;
    let r = sim.run(&mut ConstantAmbient { lux: 5000.0 });
    Ok(format!(
        "distance           {distance_m} m\n\
         duration           {secs} s\n\
         frames sent        {}\n\
         frames ok          {}\n\
         frame error rate   {:.2}%\n\
         retransmissions    {}\n\
         mean goodput       {:.1} Kbps\n",
        r.stats.frames_sent,
        r.stats.frames_ok,
        r.stats.frame_error_rate() * 100.0,
        r.stats.retransmissions,
        r.mean_goodput_bps / 1e3,
    ))
}

fn cmd_audit(waveform: &str) -> Result<String, String> {
    let owned;
    let waveform = if let Some(path) = waveform.strip_prefix('@') {
        owned = std::fs::read_to_string(path)
            .map_err(|e| format!("audit: cannot read {path:?}: {e}"))?;
        owned.as_str()
    } else {
        waveform
    };
    let slots: Vec<bool> = waveform
        .chars()
        .filter(|c| !c.is_whitespace())
        .map(|c| match c {
            '0' => Ok(false),
            '1' => Ok(true),
            other => Err(format!("waveform must be 0/1 characters, got {other:?}")),
        })
        .collect::<Result<_, _>>()?;
    if slots.is_empty() {
        return Err("empty waveform".into());
    }
    let auditor = FlickerAuditor::new(FlickerRules::from_config(&SystemConfig::default()));
    let report = auditor.audit(&slots);
    let mut out = format!(
        "slots              {}\nmean level         {:.4}\n",
        report.slots, report.mean_level
    );
    if report.is_clean() {
        out.push_str("verdict            flicker-free\n");
    } else {
        out.push_str(&format!(
            "verdict            {} violation(s); first: {:?}\n",
            report.violations.len(),
            report.violations[0]
        ));
    }
    Ok(out)
}

fn cmd_study() -> Result<String, String> {
    let study = UserStudy::recruit(20, 2017);
    let mut out = String::from("Table 2(b) — direct viewing, % perceiving:\n");
    let mut rows = Vec::new();
    for r in [0.003, 0.004, 0.005, 0.006, 0.007] {
        let mut row = vec![format!("{r}")];
        for c in StudyCondition::ALL {
            row.push(format!(
                "{:.0}%",
                study.percent_perceiving_step(Viewing::Direct, c, r)
            ));
        }
        rows.push(row);
    }
    out.push_str(&markdown_table(&["Res.", "L1", "L2", "L3"], &rows));
    let fth = study
        .min_safe_frequency(&[150.0, 200.0, 250.0, 300.0])
        .unwrap_or(f64::NAN);
    out.push_str(&format!("selected fth = {fth:.0} Hz, tau_p = 0.003\n"));
    Ok(out)
}

fn cmd_day(hours: f64) -> Result<String, String> {
    if !(0.5..=48.0).contains(&hours) {
        return Err("hours must be in [0.5, 48]".into());
    }
    let mut sky = DiurnalProfile::dutch_autumn(DetRng::seed_from_u64(2017));
    let day = run_day(&mut sky, hours, desim::SimDuration::secs(60), 1.0, 10_000.0);
    let energy = energy_from_trace(&day.trace, 4.7).ok_or("trace too short")?;
    Ok(format!(
        "simulated            {hours} h (sense every 60 s)
         mean planned rate    {:.1} Kbps
         adaptation steps     {} (fixed baseline: {})
         LED energy           {:.1} Wh vs always-on {:.1} Wh ({:.0}% saved)
         mean LED duty        {:.2}
",
        day.mean_plan_bps / 1e3,
        day.smart_steps,
        day.fixed_steps,
        energy.smart_j / 3600.0,
        energy.always_on_j / 3600.0,
        energy.saving * 100.0,
        energy.mean_duty,
    ))
}

fn cmd_broadcast(level: f64) -> Result<String, String> {
    if !(0.08..=0.92).contains(&level) {
        return Err("level must be in [0.08, 0.92]".into());
    }
    let seats = [
        ("desk under lamp", 1.2, 0.0),
        ("neighbour desk", 2.2, 6.0),
        ("meeting chair", 3.0, 3.0),
        ("window seat", 3.3, 12.0),
        ("far corner", 4.6, 4.0),
        ("next room door", 3.0, 40.0),
    ];
    let raw: Vec<smartvlc_sim::Seat> = seats
        .iter()
        .map(|&(_, d, a)| smartvlc_sim::Seat {
            distance_m: d,
            off_axis_deg: a,
        })
        .collect();
    let reports = run_broadcast(level, &raw, desim::SimDuration::millis(600), 2017);
    let rows: Vec<Vec<String>> = seats
        .iter()
        .zip(&reports)
        .map(|(&(name, d, a), r)| {
            vec![
                name.to_string(),
                format!("{d} m @ {a}°"),
                r.frames_ok.to_string(),
                format!("{:.1}", r.goodput_bps / 1e3),
            ]
        })
        .collect();
    Ok(markdown_table(
        &["seat", "placement", "frames ok", "goodput Kbps"],
        &rows,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn no_args_prints_usage() {
        assert!(run(&[]).unwrap_err().contains("USAGE"));
    }

    #[test]
    fn unknown_command_rejected() {
        assert!(run(&args(&["frobnicate"]))
            .unwrap_err()
            .contains("unknown command"));
    }

    #[test]
    fn plan_works_and_validates() {
        let out = run(&args(&["plan", "0.35"])).unwrap();
        assert!(out.contains("super-symbol"));
        assert!(out.contains("Kbps"));
        assert!(run(&args(&["plan", "1.5"])).is_err());
        assert!(run(&args(&["plan", "abc"])).is_err());
        assert!(run(&args(&["plan"])).is_err());
    }

    #[test]
    fn envelope_prints_hull() {
        let out = run(&args(&["envelope"])).unwrap();
        assert!(out.contains("S("));
        assert!(out.lines().count() > 10);
    }

    #[test]
    fn sweep_all_schemes() {
        for s in ["amppm", "mppm", "ookct", "vppm", "oppm", "darklight"] {
            let out = run(&args(&["sweep", s])).unwrap();
            assert!(out.contains("0.50"), "{s}");
        }
        assert!(run(&args(&["sweep", "nope"])).is_err());
    }

    #[test]
    fn simulate_short_run() {
        let out = run(&args(&["simulate", "3.0", "0.3"])).unwrap();
        assert!(out.contains("mean goodput"));
        assert!(run(&args(&["simulate", "99"])).is_err());
    }

    #[test]
    fn audit_verdicts() {
        // Fast alternation: clean.
        let wave: String = "10".repeat(2000);
        let out = run(&args(&["audit", &wave])).unwrap();
        assert!(out.contains("flicker-free"));
        // 1000-slot runs: Type-I violation.
        let slow: String = format!("{}{}", "1".repeat(1000), "0".repeat(1000)).repeat(4);
        let out = run(&args(&["audit", &slow])).unwrap();
        assert!(out.contains("violation"));
        assert!(run(&args(&["audit", "10x1"])).is_err());
        assert!(run(&args(&["audit", ""])).is_err());
    }

    #[test]
    fn audit_reads_files() {
        let path = std::env::temp_dir().join("smartvlc_audit_test.txt");
        std::fs::write(&path, "10".repeat(1500)).unwrap();
        let arg = format!("@{}", path.display());
        let out = run(&args(&["audit", &arg])).unwrap();
        assert!(out.contains("flicker-free"), "{out}");
        std::fs::remove_file(&path).ok();
        assert!(run(&args(&["audit", "@/nonexistent/path"])).is_err());
    }

    #[test]
    fn study_selects_paper_values() {
        let out = run(&args(&["study"])).unwrap();
        assert!(out.contains("fth = 250"));
    }

    #[test]
    fn day_command() {
        let out = run(&args(&["day", "2"])).unwrap();
        assert!(out.contains("mean planned rate"), "{out}");
        assert!(run(&args(&["day", "1000"])).is_err());
        assert!(run(&args(&["day", "x"])).is_err());
    }

    #[test]
    fn broadcast_command() {
        let out = run(&args(&["broadcast", "0.5"])).unwrap();
        assert!(out.contains("desk under lamp"), "{out}");
        assert!(out.contains("far corner"));
        assert!(run(&args(&["broadcast", "0.99"])).is_err());
        assert!(run(&args(&["broadcast"])).is_err());
    }
}
