//! # SmartVLC — when smart lighting meets visible light communication
//!
//! A from-scratch Rust reproduction of *"SmartVLC: When Smart Lighting
//! Meets VLC"* (Wu, Wang, Xiong, Zuniga — CoNEXT 2017): a visible-light
//! link whose LED simultaneously provides *illumination* (fine-grained,
//! flicker-free dimming that keeps ambient + artificial light constant)
//! and *communication* (maximum throughput at every dimming level), built
//! on the paper's **AMPPM** modulation.
//!
//! This crate is a facade: it re-exports the workspace's layers under one
//! name so examples and downstream users need a single dependency.
//!
//! | Layer | Crate | What lives there |
//! |---|---|---|
//! | [`core`] | `smartvlc-core` | AMPPM (super-symbols, envelope, planner), MPPM/OOK-CT/VPPM baselines, Eq. 2–5 models, perception-domain adaptation, flicker rules, Table 1 framing |
//! | [`combinat`] | `combinat` | big integers, exact binomials, bit I/O, the Algorithm 1/2 enumerative codec |
//! | [`channel`] | `vlc-channel` | LED dynamics, Lambertian optics, photodiode, TIA+ADC, ambient-light profiles |
//! | [`hw`] | `vlc-hw` | BeagleBone PRU timing model, ARM↔PRU rings, GPIO/ADC loops, Wi-Fi side channel |
//! | [`link`] | `smartvlc-link` | transmitter/receiver state machines, clock recovery, streaming ARQ, end-to-end link simulation |
//! | [`sim`] | `smartvlc-sim` | the paper's §6 experiments: static/dynamic scenarios, the virtual user study, reporting |
//! | [`desim`] | `desim` | deterministic discrete-event kernel (time, scheduler, RNG) |
//!
//! ## Quickstart
//!
//! ```
//! use smartvlc::prelude::*;
//!
//! // Plan the best AMPPM super-symbol for a 35% dimming level...
//! let mut planner = AmppmPlanner::new(SystemConfig::default()).unwrap();
//! let plan = planner.plan(DimmingLevel::new(0.35).unwrap()).unwrap();
//! assert!(plan.rate_bps > 90_000.0);
//!
//! // ...and send a frame through the slot-domain codec.
//! let mut codec = FrameCodec::new(SystemConfig::default()).unwrap();
//! let descriptor = amppm_descriptor(&SystemConfig::default(),
//!                                   DimmingLevel::new(0.35).unwrap());
//! let frame = Frame::new(descriptor, b"hello light".to_vec()).unwrap();
//! let slots = codec.emit(&frame).unwrap();
//! let (parsed, stats) = codec.parse(&slots).unwrap();
//! assert!(stats.crc_ok);
//! assert_eq!(parsed.payload, b"hello light");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;

pub use combinat;
pub use desim;
pub use smartvlc_core as core;
pub use smartvlc_link as link;
pub use smartvlc_sim as sim;
pub use vlc_channel as channel;
pub use vlc_hw as hw;

/// The items most programs need, in one import.
pub mod prelude {
    pub use combinat::{BigUint, BinomialTable, BitReader, BitWriter};
    pub use desim::{DetRng, Frequency, SimDuration, SimTime};
    pub use smartvlc_core::adaptation::{AdaptationStepper, FixedStepper, PerceptionStepper};
    pub use smartvlc_core::amppm::{Candidate, Envelope, SuperSymbol};
    pub use smartvlc_core::dimming::IlluminationTarget;
    pub use smartvlc_core::frame::codec::FrameCodec;
    pub use smartvlc_core::frame::format::{amppm_descriptor, Frame, PatternDescriptor};
    pub use smartvlc_core::modem::SlotModem;
    pub use smartvlc_core::schemes::{
        AmppmModem, DarklightModem, MppmModem, OokCtModem, OppmModem, VppmModem,
    };
    pub use smartvlc_core::{
        AmppmPlanner, DimmingLevel, FlickerRules, SlotErrorProbs, SymbolPattern, SystemConfig,
    };
    pub use smartvlc_link::{
        ChannelFidelity, LinkConfig, LinkSimulation, Receiver, RxEvent, SchemeKind, Transmitter,
    };
    pub use smartvlc_sim::{
        energy_from_trace, run_broadcast, run_day, run_dynamic, run_scheme_comparison, summarize,
        UserStudy,
    };
    pub use vlc_channel::ambient::{AmbientProfile, BlindRamp, ConstantAmbient, DiurnalProfile};
    pub use vlc_channel::{ChannelConfig, OpticalChannel, ShadowingModel};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_compose() {
        let cfg = SystemConfig::default();
        let planner = AmppmPlanner::new(cfg).unwrap();
        let plan = planner.plan(DimmingLevel::new(0.5).unwrap()).unwrap();
        assert!(plan.norm_rate > 0.8);
    }
}
