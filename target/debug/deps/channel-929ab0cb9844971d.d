/root/repo/target/debug/deps/channel-929ab0cb9844971d.d: crates/bench/benches/channel.rs

/root/repo/target/debug/deps/channel-929ab0cb9844971d: crates/bench/benches/channel.rs

crates/bench/benches/channel.rs:
