/root/repo/target/debug/deps/fig19a_dynamic_throughput-ea251f49f947c39d.d: crates/bench/src/bin/fig19a_dynamic_throughput.rs

/root/repo/target/debug/deps/fig19a_dynamic_throughput-ea251f49f947c39d: crates/bench/src/bin/fig19a_dynamic_throughput.rs

crates/bench/src/bin/fig19a_dynamic_throughput.rs:
