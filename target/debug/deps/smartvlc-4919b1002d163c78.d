/root/repo/target/debug/deps/smartvlc-4919b1002d163c78.d: src/bin/smartvlc.rs Cargo.toml

/root/repo/target/debug/deps/libsmartvlc-4919b1002d163c78.rmeta: src/bin/smartvlc.rs Cargo.toml

src/bin/smartvlc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
