/root/repo/target/debug/deps/smartvlc_bench-a2f8012168f6583a.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsmartvlc_bench-a2f8012168f6583a.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsmartvlc_bench-a2f8012168f6583a.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
