/root/repo/target/debug/deps/chaos_props-9161c30785d3ede8.d: crates/smartvlc-link/tests/chaos_props.rs Cargo.toml

/root/repo/target/debug/deps/libchaos_props-9161c30785d3ede8.rmeta: crates/smartvlc-link/tests/chaos_props.rs Cargo.toml

crates/smartvlc-link/tests/chaos_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
