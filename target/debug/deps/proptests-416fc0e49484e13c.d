/root/repo/target/debug/deps/proptests-416fc0e49484e13c.d: crates/desim/tests/proptests.rs

/root/repo/target/debug/deps/libproptests-416fc0e49484e13c.rmeta: crates/desim/tests/proptests.rs

crates/desim/tests/proptests.rs:
