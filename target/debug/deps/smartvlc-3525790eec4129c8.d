/root/repo/target/debug/deps/smartvlc-3525790eec4129c8.d: src/lib.rs src/cli.rs Cargo.toml

/root/repo/target/debug/deps/libsmartvlc-3525790eec4129c8.rmeta: src/lib.rs src/cli.rs Cargo.toml

src/lib.rs:
src/cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
