/root/repo/target/debug/deps/smartvlc-476305bf1764e508.d: src/bin/smartvlc.rs

/root/repo/target/debug/deps/libsmartvlc-476305bf1764e508.rmeta: src/bin/smartvlc.rs

src/bin/smartvlc.rs:
