/root/repo/target/debug/deps/fig19c_adaptation_count-7e11200aa18a80b2.d: crates/bench/src/bin/fig19c_adaptation_count.rs

/root/repo/target/debug/deps/fig19c_adaptation_count-7e11200aa18a80b2: crates/bench/src/bin/fig19c_adaptation_count.rs

crates/bench/src/bin/fig19c_adaptation_count.rs:
