/root/repo/target/debug/deps/fig09_envelope-c138219c4d1c21bd.d: crates/bench/src/bin/fig09_envelope.rs

/root/repo/target/debug/deps/libfig09_envelope-c138219c4d1c21bd.rmeta: crates/bench/src/bin/fig09_envelope.rs

crates/bench/src/bin/fig09_envelope.rs:
