/root/repo/target/debug/deps/table2_user_study-964e896d2bc755ac.d: crates/bench/src/bin/table2_user_study.rs

/root/repo/target/debug/deps/libtable2_user_study-964e896d2bc755ac.rmeta: crates/bench/src/bin/table2_user_study.rs

crates/bench/src/bin/table2_user_study.rs:
