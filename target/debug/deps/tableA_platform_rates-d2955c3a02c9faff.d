/root/repo/target/debug/deps/tableA_platform_rates-d2955c3a02c9faff.d: crates/bench/src/bin/tableA_platform_rates.rs Cargo.toml

/root/repo/target/debug/deps/libtableA_platform_rates-d2955c3a02c9faff.rmeta: crates/bench/src/bin/tableA_platform_rates.rs Cargo.toml

crates/bench/src/bin/tableA_platform_rates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
