/root/repo/target/debug/deps/ablation_envelope-a587470fd38c62b6.d: crates/bench/src/bin/ablation_envelope.rs Cargo.toml

/root/repo/target/debug/deps/libablation_envelope-a587470fd38c62b6.rmeta: crates/bench/src/bin/ablation_envelope.rs Cargo.toml

crates/bench/src/bin/ablation_envelope.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
