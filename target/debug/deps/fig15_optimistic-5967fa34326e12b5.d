/root/repo/target/debug/deps/fig15_optimistic-5967fa34326e12b5.d: crates/bench/src/bin/fig15_optimistic.rs

/root/repo/target/debug/deps/libfig15_optimistic-5967fa34326e12b5.rmeta: crates/bench/src/bin/fig15_optimistic.rs

crates/bench/src/bin/fig15_optimistic.rs:
