/root/repo/target/debug/deps/props-3d95eb35335b26d3.d: tests/props.rs

/root/repo/target/debug/deps/props-3d95eb35335b26d3: tests/props.rs

tests/props.rs:
