/root/repo/target/debug/deps/combinat-81972bc9dd673c5a.d: crates/combinat/src/lib.rs crates/combinat/src/biguint.rs crates/combinat/src/binomial.rs crates/combinat/src/bits.rs crates/combinat/src/codeword.rs crates/combinat/src/tabulated.rs Cargo.toml

/root/repo/target/debug/deps/libcombinat-81972bc9dd673c5a.rmeta: crates/combinat/src/lib.rs crates/combinat/src/biguint.rs crates/combinat/src/binomial.rs crates/combinat/src/bits.rs crates/combinat/src/codeword.rs crates/combinat/src/tabulated.rs Cargo.toml

crates/combinat/src/lib.rs:
crates/combinat/src/biguint.rs:
crates/combinat/src/binomial.rs:
crates/combinat/src/bits.rs:
crates/combinat/src/codeword.rs:
crates/combinat/src/tabulated.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
