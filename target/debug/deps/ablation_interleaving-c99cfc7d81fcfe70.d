/root/repo/target/debug/deps/ablation_interleaving-c99cfc7d81fcfe70.d: crates/bench/src/bin/ablation_interleaving.rs

/root/repo/target/debug/deps/ablation_interleaving-c99cfc7d81fcfe70: crates/bench/src/bin/ablation_interleaving.rs

crates/bench/src/bin/ablation_interleaving.rs:
