/root/repo/target/debug/deps/tableB_broadcast-f3e968b02073805e.d: crates/bench/src/bin/tableB_broadcast.rs Cargo.toml

/root/repo/target/debug/deps/libtableB_broadcast-f3e968b02073805e.rmeta: crates/bench/src/bin/tableB_broadcast.rs Cargo.toml

crates/bench/src/bin/tableB_broadcast.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
