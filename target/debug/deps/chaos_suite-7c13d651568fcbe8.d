/root/repo/target/debug/deps/chaos_suite-7c13d651568fcbe8.d: crates/bench/src/bin/chaos_suite.rs

/root/repo/target/debug/deps/chaos_suite-7c13d651568fcbe8: crates/bench/src/bin/chaos_suite.rs

crates/bench/src/bin/chaos_suite.rs:
