/root/repo/target/debug/deps/vlc_hw-5c478efe0cb18e8b.d: crates/vlc-hw/src/lib.rs crates/vlc-hw/src/board.rs crates/vlc-hw/src/gpio.rs crates/vlc-hw/src/pru.rs crates/vlc-hw/src/sampler.rs crates/vlc-hw/src/shmem.rs crates/vlc-hw/src/wifi.rs

/root/repo/target/debug/deps/libvlc_hw-5c478efe0cb18e8b.rmeta: crates/vlc-hw/src/lib.rs crates/vlc-hw/src/board.rs crates/vlc-hw/src/gpio.rs crates/vlc-hw/src/pru.rs crates/vlc-hw/src/sampler.rs crates/vlc-hw/src/shmem.rs crates/vlc-hw/src/wifi.rs

crates/vlc-hw/src/lib.rs:
crates/vlc-hw/src/board.rs:
crates/vlc-hw/src/gpio.rs:
crates/vlc-hw/src/pru.rs:
crates/vlc-hw/src/sampler.rs:
crates/vlc-hw/src/shmem.rs:
crates/vlc-hw/src/wifi.rs:
