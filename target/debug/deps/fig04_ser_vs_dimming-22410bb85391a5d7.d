/root/repo/target/debug/deps/fig04_ser_vs_dimming-22410bb85391a5d7.d: crates/bench/src/bin/fig04_ser_vs_dimming.rs

/root/repo/target/debug/deps/fig04_ser_vs_dimming-22410bb85391a5d7: crates/bench/src/bin/fig04_ser_vs_dimming.rs

crates/bench/src/bin/fig04_ser_vs_dimming.rs:
