/root/repo/target/debug/deps/smartvlc-c1563a6d2eadaeae.d: src/bin/smartvlc.rs

/root/repo/target/debug/deps/libsmartvlc-c1563a6d2eadaeae.rmeta: src/bin/smartvlc.rs

src/bin/smartvlc.rs:
