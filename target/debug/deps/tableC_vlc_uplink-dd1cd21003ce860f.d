/root/repo/target/debug/deps/tableC_vlc_uplink-dd1cd21003ce860f.d: crates/bench/src/bin/tableC_vlc_uplink.rs

/root/repo/target/debug/deps/tableC_vlc_uplink-dd1cd21003ce860f: crates/bench/src/bin/tableC_vlc_uplink.rs

crates/bench/src/bin/tableC_vlc_uplink.rs:
