/root/repo/target/debug/deps/fig16_distance-a11570362beb0d00.d: crates/bench/src/bin/fig16_distance.rs

/root/repo/target/debug/deps/fig16_distance-a11570362beb0d00: crates/bench/src/bin/fig16_distance.rs

crates/bench/src/bin/fig16_distance.rs:
