/root/repo/target/debug/deps/fig09_envelope-c1ac4f5e419c26a9.d: crates/bench/src/bin/fig09_envelope.rs Cargo.toml

/root/repo/target/debug/deps/libfig09_envelope-c1ac4f5e419c26a9.rmeta: crates/bench/src/bin/fig09_envelope.rs Cargo.toml

crates/bench/src/bin/fig09_envelope.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
