/root/repo/target/debug/deps/smartvlc_bench-aa345a3b8db7b563.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/smartvlc_bench-aa345a3b8db7b563: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
