/root/repo/target/debug/deps/codec-35e1b811216e6ee5.d: crates/bench/benches/codec.rs

/root/repo/target/debug/deps/codec-35e1b811216e6ee5: crates/bench/benches/codec.rs

crates/bench/benches/codec.rs:
