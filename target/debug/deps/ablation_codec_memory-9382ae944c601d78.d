/root/repo/target/debug/deps/ablation_codec_memory-9382ae944c601d78.d: crates/bench/src/bin/ablation_codec_memory.rs Cargo.toml

/root/repo/target/debug/deps/libablation_codec_memory-9382ae944c601d78.rmeta: crates/bench/src/bin/ablation_codec_memory.rs Cargo.toml

crates/bench/src/bin/ablation_codec_memory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
