/root/repo/target/debug/deps/fig05_resolution-157a200ac3e3bc56.d: crates/bench/src/bin/fig05_resolution.rs Cargo.toml

/root/repo/target/debug/deps/libfig05_resolution-157a200ac3e3bc56.rmeta: crates/bench/src/bin/fig05_resolution.rs Cargo.toml

crates/bench/src/bin/fig05_resolution.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
