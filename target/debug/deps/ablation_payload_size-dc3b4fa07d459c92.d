/root/repo/target/debug/deps/ablation_payload_size-dc3b4fa07d459c92.d: crates/bench/src/bin/ablation_payload_size.rs

/root/repo/target/debug/deps/ablation_payload_size-dc3b4fa07d459c92: crates/bench/src/bin/ablation_payload_size.rs

crates/bench/src/bin/ablation_payload_size.rs:
