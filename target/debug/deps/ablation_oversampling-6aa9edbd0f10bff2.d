/root/repo/target/debug/deps/ablation_oversampling-6aa9edbd0f10bff2.d: crates/bench/src/bin/ablation_oversampling.rs

/root/repo/target/debug/deps/ablation_oversampling-6aa9edbd0f10bff2: crates/bench/src/bin/ablation_oversampling.rs

crates/bench/src/bin/ablation_oversampling.rs:
