/root/repo/target/debug/deps/smartvlc-08febad84ea7d241.d: src/bin/smartvlc.rs

/root/repo/target/debug/deps/smartvlc-08febad84ea7d241: src/bin/smartvlc.rs

src/bin/smartvlc.rs:
