/root/repo/target/debug/deps/smartvlc-b682e4629abaadbf.d: src/bin/smartvlc.rs

/root/repo/target/debug/deps/smartvlc-b682e4629abaadbf: src/bin/smartvlc.rs

src/bin/smartvlc.rs:
