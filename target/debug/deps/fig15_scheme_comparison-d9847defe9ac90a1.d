/root/repo/target/debug/deps/fig15_scheme_comparison-d9847defe9ac90a1.d: crates/bench/src/bin/fig15_scheme_comparison.rs Cargo.toml

/root/repo/target/debug/deps/libfig15_scheme_comparison-d9847defe9ac90a1.rmeta: crates/bench/src/bin/fig15_scheme_comparison.rs Cargo.toml

crates/bench/src/bin/fig15_scheme_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
