/root/repo/target/debug/deps/tableB_broadcast-cae3fb16bab06710.d: crates/bench/src/bin/tableB_broadcast.rs

/root/repo/target/debug/deps/tableB_broadcast-cae3fb16bab06710: crates/bench/src/bin/tableB_broadcast.rs

crates/bench/src/bin/tableB_broadcast.rs:
