/root/repo/target/debug/deps/end_to_end-32b7be491bf3ef60.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-32b7be491bf3ef60: tests/end_to_end.rs

tests/end_to_end.rs:
