/root/repo/target/debug/deps/tableC_vlc_uplink-0c35dc36686ead24.d: crates/bench/src/bin/tableC_vlc_uplink.rs

/root/repo/target/debug/deps/tableC_vlc_uplink-0c35dc36686ead24: crates/bench/src/bin/tableC_vlc_uplink.rs

crates/bench/src/bin/tableC_vlc_uplink.rs:
