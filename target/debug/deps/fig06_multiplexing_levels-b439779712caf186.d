/root/repo/target/debug/deps/fig06_multiplexing_levels-b439779712caf186.d: crates/bench/src/bin/fig06_multiplexing_levels.rs Cargo.toml

/root/repo/target/debug/deps/libfig06_multiplexing_levels-b439779712caf186.rmeta: crates/bench/src/bin/fig06_multiplexing_levels.rs Cargo.toml

crates/bench/src/bin/fig06_multiplexing_levels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
