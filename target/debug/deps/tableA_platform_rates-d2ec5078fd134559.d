/root/repo/target/debug/deps/tableA_platform_rates-d2ec5078fd134559.d: crates/bench/src/bin/tableA_platform_rates.rs

/root/repo/target/debug/deps/tableA_platform_rates-d2ec5078fd134559: crates/bench/src/bin/tableA_platform_rates.rs

crates/bench/src/bin/tableA_platform_rates.rs:
