/root/repo/target/debug/deps/desim-e7e37119a3d68775.d: crates/desim/src/lib.rs crates/desim/src/process.rs crates/desim/src/rng.rs crates/desim/src/scheduler.rs crates/desim/src/time.rs

/root/repo/target/debug/deps/desim-e7e37119a3d68775: crates/desim/src/lib.rs crates/desim/src/process.rs crates/desim/src/rng.rs crates/desim/src/scheduler.rs crates/desim/src/time.rs

crates/desim/src/lib.rs:
crates/desim/src/process.rs:
crates/desim/src/rng.rs:
crates/desim/src/scheduler.rs:
crates/desim/src/time.rs:
