/root/repo/target/debug/deps/fig19b_intensity_trace-1bd14fc4a66b7c09.d: crates/bench/src/bin/fig19b_intensity_trace.rs

/root/repo/target/debug/deps/fig19b_intensity_trace-1bd14fc4a66b7c09: crates/bench/src/bin/fig19b_intensity_trace.rs

crates/bench/src/bin/fig19b_intensity_trace.rs:
