/root/repo/target/debug/deps/proptests-8eefe9ddc657f650.d: crates/desim/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-8eefe9ddc657f650.rmeta: crates/desim/tests/proptests.rs Cargo.toml

crates/desim/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
