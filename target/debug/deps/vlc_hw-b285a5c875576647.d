/root/repo/target/debug/deps/vlc_hw-b285a5c875576647.d: crates/vlc-hw/src/lib.rs crates/vlc-hw/src/board.rs crates/vlc-hw/src/gpio.rs crates/vlc-hw/src/pru.rs crates/vlc-hw/src/sampler.rs crates/vlc-hw/src/shmem.rs crates/vlc-hw/src/wifi.rs

/root/repo/target/debug/deps/libvlc_hw-b285a5c875576647.rlib: crates/vlc-hw/src/lib.rs crates/vlc-hw/src/board.rs crates/vlc-hw/src/gpio.rs crates/vlc-hw/src/pru.rs crates/vlc-hw/src/sampler.rs crates/vlc-hw/src/shmem.rs crates/vlc-hw/src/wifi.rs

/root/repo/target/debug/deps/libvlc_hw-b285a5c875576647.rmeta: crates/vlc-hw/src/lib.rs crates/vlc-hw/src/board.rs crates/vlc-hw/src/gpio.rs crates/vlc-hw/src/pru.rs crates/vlc-hw/src/sampler.rs crates/vlc-hw/src/shmem.rs crates/vlc-hw/src/wifi.rs

crates/vlc-hw/src/lib.rs:
crates/vlc-hw/src/board.rs:
crates/vlc-hw/src/gpio.rs:
crates/vlc-hw/src/pru.rs:
crates/vlc-hw/src/sampler.rs:
crates/vlc-hw/src/shmem.rs:
crates/vlc-hw/src/wifi.rs:
