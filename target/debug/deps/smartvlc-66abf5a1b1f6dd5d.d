/root/repo/target/debug/deps/smartvlc-66abf5a1b1f6dd5d.d: src/lib.rs src/cli.rs Cargo.toml

/root/repo/target/debug/deps/libsmartvlc-66abf5a1b1f6dd5d.rmeta: src/lib.rs src/cli.rs Cargo.toml

src/lib.rs:
src/cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
