/root/repo/target/debug/deps/channel-160c5d13cf9c4acd.d: crates/bench/benches/channel.rs Cargo.toml

/root/repo/target/debug/deps/libchannel-160c5d13cf9c4acd.rmeta: crates/bench/benches/channel.rs Cargo.toml

crates/bench/benches/channel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
