/root/repo/target/debug/deps/flicker_safety-795ab0b75c57cffb.d: tests/flicker_safety.rs Cargo.toml

/root/repo/target/debug/deps/libflicker_safety-795ab0b75c57cffb.rmeta: tests/flicker_safety.rs Cargo.toml

tests/flicker_safety.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
