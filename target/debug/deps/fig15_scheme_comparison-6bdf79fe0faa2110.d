/root/repo/target/debug/deps/fig15_scheme_comparison-6bdf79fe0faa2110.d: crates/bench/src/bin/fig15_scheme_comparison.rs

/root/repo/target/debug/deps/libfig15_scheme_comparison-6bdf79fe0faa2110.rmeta: crates/bench/src/bin/fig15_scheme_comparison.rs

crates/bench/src/bin/fig15_scheme_comparison.rs:
