/root/repo/target/debug/deps/ablation_codec_memory-d6ee88660336c9b8.d: crates/bench/src/bin/ablation_codec_memory.rs

/root/repo/target/debug/deps/ablation_codec_memory-d6ee88660336c9b8: crates/bench/src/bin/ablation_codec_memory.rs

crates/bench/src/bin/ablation_codec_memory.rs:
