/root/repo/target/debug/deps/ablation_payload_size-ecf1bd40296db498.d: crates/bench/src/bin/ablation_payload_size.rs

/root/repo/target/debug/deps/ablation_payload_size-ecf1bd40296db498: crates/bench/src/bin/ablation_payload_size.rs

crates/bench/src/bin/ablation_payload_size.rs:
