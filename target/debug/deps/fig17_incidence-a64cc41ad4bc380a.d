/root/repo/target/debug/deps/fig17_incidence-a64cc41ad4bc380a.d: crates/bench/src/bin/fig17_incidence.rs

/root/repo/target/debug/deps/fig17_incidence-a64cc41ad4bc380a: crates/bench/src/bin/fig17_incidence.rs

crates/bench/src/bin/fig17_incidence.rs:
