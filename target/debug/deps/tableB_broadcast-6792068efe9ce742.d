/root/repo/target/debug/deps/tableB_broadcast-6792068efe9ce742.d: crates/bench/src/bin/tableB_broadcast.rs Cargo.toml

/root/repo/target/debug/deps/libtableB_broadcast-6792068efe9ce742.rmeta: crates/bench/src/bin/tableB_broadcast.rs Cargo.toml

crates/bench/src/bin/tableB_broadcast.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
