/root/repo/target/debug/deps/fig09_envelope-cbbec8c2a56b94a9.d: crates/bench/src/bin/fig09_envelope.rs

/root/repo/target/debug/deps/fig09_envelope-cbbec8c2a56b94a9: crates/bench/src/bin/fig09_envelope.rs

crates/bench/src/bin/fig09_envelope.rs:
