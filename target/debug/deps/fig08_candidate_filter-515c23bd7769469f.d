/root/repo/target/debug/deps/fig08_candidate_filter-515c23bd7769469f.d: crates/bench/src/bin/fig08_candidate_filter.rs Cargo.toml

/root/repo/target/debug/deps/libfig08_candidate_filter-515c23bd7769469f.rmeta: crates/bench/src/bin/fig08_candidate_filter.rs Cargo.toml

crates/bench/src/bin/fig08_candidate_filter.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
