/root/repo/target/debug/deps/ablation_codec_memory-a7305cd2d5101913.d: crates/bench/src/bin/ablation_codec_memory.rs Cargo.toml

/root/repo/target/debug/deps/libablation_codec_memory-a7305cd2d5101913.rmeta: crates/bench/src/bin/ablation_codec_memory.rs Cargo.toml

crates/bench/src/bin/ablation_codec_memory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
