/root/repo/target/debug/deps/flicker_safety-1b7d984085c14258.d: tests/flicker_safety.rs

/root/repo/target/debug/deps/libflicker_safety-1b7d984085c14258.rmeta: tests/flicker_safety.rs

tests/flicker_safety.rs:
