/root/repo/target/debug/deps/determinism-6911ac88c7904597.d: crates/smartvlc-sim/tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-6911ac88c7904597.rmeta: crates/smartvlc-sim/tests/determinism.rs Cargo.toml

crates/smartvlc-sim/tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
