/root/repo/target/debug/deps/smartvlc-1ddab4be2885ade2.d: src/bin/smartvlc.rs Cargo.toml

/root/repo/target/debug/deps/libsmartvlc-1ddab4be2885ade2.rmeta: src/bin/smartvlc.rs Cargo.toml

src/bin/smartvlc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
