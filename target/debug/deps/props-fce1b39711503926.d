/root/repo/target/debug/deps/props-fce1b39711503926.d: tests/props.rs

/root/repo/target/debug/deps/libprops-fce1b39711503926.rmeta: tests/props.rs

tests/props.rs:
