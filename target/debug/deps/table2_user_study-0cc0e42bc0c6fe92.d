/root/repo/target/debug/deps/table2_user_study-0cc0e42bc0c6fe92.d: crates/bench/src/bin/table2_user_study.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_user_study-0cc0e42bc0c6fe92.rmeta: crates/bench/src/bin/table2_user_study.rs Cargo.toml

crates/bench/src/bin/table2_user_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
