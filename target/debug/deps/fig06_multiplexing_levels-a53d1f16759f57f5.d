/root/repo/target/debug/deps/fig06_multiplexing_levels-a53d1f16759f57f5.d: crates/bench/src/bin/fig06_multiplexing_levels.rs

/root/repo/target/debug/deps/libfig06_multiplexing_levels-a53d1f16759f57f5.rmeta: crates/bench/src/bin/fig06_multiplexing_levels.rs

crates/bench/src/bin/fig06_multiplexing_levels.rs:
