/root/repo/target/debug/deps/fig04_ser_vs_dimming-c1860d2d105f8e5f.d: crates/bench/src/bin/fig04_ser_vs_dimming.rs

/root/repo/target/debug/deps/fig04_ser_vs_dimming-c1860d2d105f8e5f: crates/bench/src/bin/fig04_ser_vs_dimming.rs

crates/bench/src/bin/fig04_ser_vs_dimming.rs:
