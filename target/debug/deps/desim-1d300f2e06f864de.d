/root/repo/target/debug/deps/desim-1d300f2e06f864de.d: crates/desim/src/lib.rs crates/desim/src/process.rs crates/desim/src/rng.rs crates/desim/src/scheduler.rs crates/desim/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libdesim-1d300f2e06f864de.rmeta: crates/desim/src/lib.rs crates/desim/src/process.rs crates/desim/src/rng.rs crates/desim/src/scheduler.rs crates/desim/src/time.rs Cargo.toml

crates/desim/src/lib.rs:
crates/desim/src/process.rs:
crates/desim/src/rng.rs:
crates/desim/src/scheduler.rs:
crates/desim/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
