/root/repo/target/debug/deps/fig06_multiplexing_levels-5c914954f1250b8f.d: crates/bench/src/bin/fig06_multiplexing_levels.rs

/root/repo/target/debug/deps/fig06_multiplexing_levels-5c914954f1250b8f: crates/bench/src/bin/fig06_multiplexing_levels.rs

crates/bench/src/bin/fig06_multiplexing_levels.rs:
