/root/repo/target/debug/deps/fig05_resolution-fe737fcd60313ea9.d: crates/bench/src/bin/fig05_resolution.rs Cargo.toml

/root/repo/target/debug/deps/libfig05_resolution-fe737fcd60313ea9.rmeta: crates/bench/src/bin/fig05_resolution.rs Cargo.toml

crates/bench/src/bin/fig05_resolution.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
