/root/repo/target/debug/deps/fig17_incidence-42d6724d8c9469b7.d: crates/bench/src/bin/fig17_incidence.rs

/root/repo/target/debug/deps/libfig17_incidence-42d6724d8c9469b7.rmeta: crates/bench/src/bin/fig17_incidence.rs

crates/bench/src/bin/fig17_incidence.rs:
