/root/repo/target/debug/deps/ablation_oversampling-5cdbe782c109cbe6.d: crates/bench/src/bin/ablation_oversampling.rs

/root/repo/target/debug/deps/libablation_oversampling-5cdbe782c109cbe6.rmeta: crates/bench/src/bin/ablation_oversampling.rs

crates/bench/src/bin/ablation_oversampling.rs:
