/root/repo/target/debug/deps/frame_pipeline-e5c71973f791f565.d: crates/bench/benches/frame_pipeline.rs

/root/repo/target/debug/deps/frame_pipeline-e5c71973f791f565: crates/bench/benches/frame_pipeline.rs

crates/bench/benches/frame_pipeline.rs:
