/root/repo/target/debug/deps/vlc_channel-f4f471d097ed9429.d: crates/vlc-channel/src/lib.rs crates/vlc-channel/src/ambient.rs crates/vlc-channel/src/detector.rs crates/vlc-channel/src/faults.rs crates/vlc-channel/src/frontend.rs crates/vlc-channel/src/led.rs crates/vlc-channel/src/link.rs crates/vlc-channel/src/optics.rs crates/vlc-channel/src/photodiode.rs crates/vlc-channel/src/shadowing.rs

/root/repo/target/debug/deps/vlc_channel-f4f471d097ed9429: crates/vlc-channel/src/lib.rs crates/vlc-channel/src/ambient.rs crates/vlc-channel/src/detector.rs crates/vlc-channel/src/faults.rs crates/vlc-channel/src/frontend.rs crates/vlc-channel/src/led.rs crates/vlc-channel/src/link.rs crates/vlc-channel/src/optics.rs crates/vlc-channel/src/photodiode.rs crates/vlc-channel/src/shadowing.rs

crates/vlc-channel/src/lib.rs:
crates/vlc-channel/src/ambient.rs:
crates/vlc-channel/src/detector.rs:
crates/vlc-channel/src/faults.rs:
crates/vlc-channel/src/frontend.rs:
crates/vlc-channel/src/led.rs:
crates/vlc-channel/src/link.rs:
crates/vlc-channel/src/optics.rs:
crates/vlc-channel/src/photodiode.rs:
crates/vlc-channel/src/shadowing.rs:
