/root/repo/target/debug/deps/fig16_distance-a207c81fa55033c1.d: crates/bench/src/bin/fig16_distance.rs

/root/repo/target/debug/deps/fig16_distance-a207c81fa55033c1: crates/bench/src/bin/fig16_distance.rs

crates/bench/src/bin/fig16_distance.rs:
