/root/repo/target/debug/deps/fig19a_dynamic_throughput-872e86383a400ac8.d: crates/bench/src/bin/fig19a_dynamic_throughput.rs

/root/repo/target/debug/deps/libfig19a_dynamic_throughput-872e86383a400ac8.rmeta: crates/bench/src/bin/fig19a_dynamic_throughput.rs

crates/bench/src/bin/fig19a_dynamic_throughput.rs:
