/root/repo/target/debug/deps/hw_loop-2593c48f6d391b50.d: tests/hw_loop.rs

/root/repo/target/debug/deps/hw_loop-2593c48f6d391b50: tests/hw_loop.rs

tests/hw_loop.rs:
