/root/repo/target/debug/deps/ablation_envelope-fda3dc9258693ddc.d: crates/bench/src/bin/ablation_envelope.rs

/root/repo/target/debug/deps/ablation_envelope-fda3dc9258693ddc: crates/bench/src/bin/ablation_envelope.rs

crates/bench/src/bin/ablation_envelope.rs:
