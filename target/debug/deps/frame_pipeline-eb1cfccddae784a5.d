/root/repo/target/debug/deps/frame_pipeline-eb1cfccddae784a5.d: crates/bench/benches/frame_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libframe_pipeline-eb1cfccddae784a5.rmeta: crates/bench/benches/frame_pipeline.rs Cargo.toml

crates/bench/benches/frame_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
