/root/repo/target/debug/deps/vlc_hw-e36bc645a6ff77f3.d: crates/vlc-hw/src/lib.rs crates/vlc-hw/src/board.rs crates/vlc-hw/src/gpio.rs crates/vlc-hw/src/pru.rs crates/vlc-hw/src/sampler.rs crates/vlc-hw/src/shmem.rs crates/vlc-hw/src/wifi.rs

/root/repo/target/debug/deps/libvlc_hw-e36bc645a6ff77f3.rmeta: crates/vlc-hw/src/lib.rs crates/vlc-hw/src/board.rs crates/vlc-hw/src/gpio.rs crates/vlc-hw/src/pru.rs crates/vlc-hw/src/sampler.rs crates/vlc-hw/src/shmem.rs crates/vlc-hw/src/wifi.rs

crates/vlc-hw/src/lib.rs:
crates/vlc-hw/src/board.rs:
crates/vlc-hw/src/gpio.rs:
crates/vlc-hw/src/pru.rs:
crates/vlc-hw/src/sampler.rs:
crates/vlc-hw/src/shmem.rs:
crates/vlc-hw/src/wifi.rs:
