/root/repo/target/debug/deps/hw_loop-aa47c74fb65f473d.d: tests/hw_loop.rs

/root/repo/target/debug/deps/hw_loop-aa47c74fb65f473d: tests/hw_loop.rs

tests/hw_loop.rs:
