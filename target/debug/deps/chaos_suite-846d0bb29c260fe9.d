/root/repo/target/debug/deps/chaos_suite-846d0bb29c260fe9.d: crates/bench/src/bin/chaos_suite.rs Cargo.toml

/root/repo/target/debug/deps/libchaos_suite-846d0bb29c260fe9.rmeta: crates/bench/src/bin/chaos_suite.rs Cargo.toml

crates/bench/src/bin/chaos_suite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
