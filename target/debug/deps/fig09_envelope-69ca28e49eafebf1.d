/root/repo/target/debug/deps/fig09_envelope-69ca28e49eafebf1.d: crates/bench/src/bin/fig09_envelope.rs

/root/repo/target/debug/deps/fig09_envelope-69ca28e49eafebf1: crates/bench/src/bin/fig09_envelope.rs

crates/bench/src/bin/fig09_envelope.rs:
