/root/repo/target/debug/deps/fig19b_intensity_trace-cc4737ff2dc2f274.d: crates/bench/src/bin/fig19b_intensity_trace.rs

/root/repo/target/debug/deps/libfig19b_intensity_trace-cc4737ff2dc2f274.rmeta: crates/bench/src/bin/fig19b_intensity_trace.rs

crates/bench/src/bin/fig19b_intensity_trace.rs:
