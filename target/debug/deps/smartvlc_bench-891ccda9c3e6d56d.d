/root/repo/target/debug/deps/smartvlc_bench-891ccda9c3e6d56d.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsmartvlc_bench-891ccda9c3e6d56d.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsmartvlc_bench-891ccda9c3e6d56d.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
