/root/repo/target/debug/deps/ablation_payload_size-3d85cab617889f1a.d: crates/bench/src/bin/ablation_payload_size.rs

/root/repo/target/debug/deps/libablation_payload_size-3d85cab617889f1a.rmeta: crates/bench/src/bin/ablation_payload_size.rs

crates/bench/src/bin/ablation_payload_size.rs:
