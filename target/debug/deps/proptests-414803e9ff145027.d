/root/repo/target/debug/deps/proptests-414803e9ff145027.d: crates/combinat/tests/proptests.rs

/root/repo/target/debug/deps/proptests-414803e9ff145027: crates/combinat/tests/proptests.rs

crates/combinat/tests/proptests.rs:
