/root/repo/target/debug/deps/table2_user_study-ca0e9173ef6f5e9a.d: crates/bench/src/bin/table2_user_study.rs

/root/repo/target/debug/deps/table2_user_study-ca0e9173ef6f5e9a: crates/bench/src/bin/table2_user_study.rs

crates/bench/src/bin/table2_user_study.rs:
