/root/repo/target/debug/deps/desim-976d5678a93e6425.d: crates/desim/src/lib.rs crates/desim/src/process.rs crates/desim/src/rng.rs crates/desim/src/scheduler.rs crates/desim/src/time.rs

/root/repo/target/debug/deps/libdesim-976d5678a93e6425.rmeta: crates/desim/src/lib.rs crates/desim/src/process.rs crates/desim/src/rng.rs crates/desim/src/scheduler.rs crates/desim/src/time.rs

crates/desim/src/lib.rs:
crates/desim/src/process.rs:
crates/desim/src/rng.rs:
crates/desim/src/scheduler.rs:
crates/desim/src/time.rs:
