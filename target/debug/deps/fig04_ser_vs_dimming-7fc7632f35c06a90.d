/root/repo/target/debug/deps/fig04_ser_vs_dimming-7fc7632f35c06a90.d: crates/bench/src/bin/fig04_ser_vs_dimming.rs

/root/repo/target/debug/deps/libfig04_ser_vs_dimming-7fc7632f35c06a90.rmeta: crates/bench/src/bin/fig04_ser_vs_dimming.rs

crates/bench/src/bin/fig04_ser_vs_dimming.rs:
