/root/repo/target/debug/deps/smartvlc_link-6709072950c4cb07.d: crates/smartvlc-link/src/lib.rs crates/smartvlc-link/src/error.rs crates/smartvlc-link/src/link.rs crates/smartvlc-link/src/mac.rs crates/smartvlc-link/src/rx.rs crates/smartvlc-link/src/stats.rs crates/smartvlc-link/src/sync.rs crates/smartvlc-link/src/tx.rs crates/smartvlc-link/src/uplink.rs crates/smartvlc-link/src/uplink_vlc.rs Cargo.toml

/root/repo/target/debug/deps/libsmartvlc_link-6709072950c4cb07.rmeta: crates/smartvlc-link/src/lib.rs crates/smartvlc-link/src/error.rs crates/smartvlc-link/src/link.rs crates/smartvlc-link/src/mac.rs crates/smartvlc-link/src/rx.rs crates/smartvlc-link/src/stats.rs crates/smartvlc-link/src/sync.rs crates/smartvlc-link/src/tx.rs crates/smartvlc-link/src/uplink.rs crates/smartvlc-link/src/uplink_vlc.rs Cargo.toml

crates/smartvlc-link/src/lib.rs:
crates/smartvlc-link/src/error.rs:
crates/smartvlc-link/src/link.rs:
crates/smartvlc-link/src/mac.rs:
crates/smartvlc-link/src/rx.rs:
crates/smartvlc-link/src/stats.rs:
crates/smartvlc-link/src/sync.rs:
crates/smartvlc-link/src/tx.rs:
crates/smartvlc-link/src/uplink.rs:
crates/smartvlc-link/src/uplink_vlc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
