/root/repo/target/debug/deps/fig04_ser_vs_dimming-ae8845832d509e9e.d: crates/bench/src/bin/fig04_ser_vs_dimming.rs

/root/repo/target/debug/deps/fig04_ser_vs_dimming-ae8845832d509e9e: crates/bench/src/bin/fig04_ser_vs_dimming.rs

crates/bench/src/bin/fig04_ser_vs_dimming.rs:
