/root/repo/target/debug/deps/ablation_codec_memory-38d06241822bb8bc.d: crates/bench/src/bin/ablation_codec_memory.rs

/root/repo/target/debug/deps/ablation_codec_memory-38d06241822bb8bc: crates/bench/src/bin/ablation_codec_memory.rs

crates/bench/src/bin/ablation_codec_memory.rs:
