/root/repo/target/debug/deps/tableA_platform_rates-51c27d779aa2927c.d: crates/bench/src/bin/tableA_platform_rates.rs

/root/repo/target/debug/deps/tableA_platform_rates-51c27d779aa2927c: crates/bench/src/bin/tableA_platform_rates.rs

crates/bench/src/bin/tableA_platform_rates.rs:
