/root/repo/target/debug/deps/fig15_optimistic-0f5dd34915b1080a.d: crates/bench/src/bin/fig15_optimistic.rs

/root/repo/target/debug/deps/libfig15_optimistic-0f5dd34915b1080a.rmeta: crates/bench/src/bin/fig15_optimistic.rs

crates/bench/src/bin/fig15_optimistic.rs:
