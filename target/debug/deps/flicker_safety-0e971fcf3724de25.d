/root/repo/target/debug/deps/flicker_safety-0e971fcf3724de25.d: tests/flicker_safety.rs

/root/repo/target/debug/deps/flicker_safety-0e971fcf3724de25: tests/flicker_safety.rs

tests/flicker_safety.rs:
