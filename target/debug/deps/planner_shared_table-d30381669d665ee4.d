/root/repo/target/debug/deps/planner_shared_table-d30381669d665ee4.d: crates/bench/benches/planner_shared_table.rs

/root/repo/target/debug/deps/planner_shared_table-d30381669d665ee4: crates/bench/benches/planner_shared_table.rs

crates/bench/benches/planner_shared_table.rs:
