/root/repo/target/debug/deps/fig08_candidate_filter-d9b4575779f1520d.d: crates/bench/src/bin/fig08_candidate_filter.rs

/root/repo/target/debug/deps/fig08_candidate_filter-d9b4575779f1520d: crates/bench/src/bin/fig08_candidate_filter.rs

crates/bench/src/bin/fig08_candidate_filter.rs:
