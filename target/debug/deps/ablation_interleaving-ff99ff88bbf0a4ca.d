/root/repo/target/debug/deps/ablation_interleaving-ff99ff88bbf0a4ca.d: crates/bench/src/bin/ablation_interleaving.rs Cargo.toml

/root/repo/target/debug/deps/libablation_interleaving-ff99ff88bbf0a4ca.rmeta: crates/bench/src/bin/ablation_interleaving.rs Cargo.toml

crates/bench/src/bin/ablation_interleaving.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
