/root/repo/target/debug/deps/fig17_incidence-3bf0994647493e8f.d: crates/bench/src/bin/fig17_incidence.rs

/root/repo/target/debug/deps/fig17_incidence-3bf0994647493e8f: crates/bench/src/bin/fig17_incidence.rs

crates/bench/src/bin/fig17_incidence.rs:
