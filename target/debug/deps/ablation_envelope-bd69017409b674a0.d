/root/repo/target/debug/deps/ablation_envelope-bd69017409b674a0.d: crates/bench/src/bin/ablation_envelope.rs

/root/repo/target/debug/deps/ablation_envelope-bd69017409b674a0: crates/bench/src/bin/ablation_envelope.rs

crates/bench/src/bin/ablation_envelope.rs:
