/root/repo/target/debug/deps/smartvlc_bench-85f9c6d2bf624c1c.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsmartvlc_bench-85f9c6d2bf624c1c.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
