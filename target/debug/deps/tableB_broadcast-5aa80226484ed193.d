/root/repo/target/debug/deps/tableB_broadcast-5aa80226484ed193.d: crates/bench/src/bin/tableB_broadcast.rs

/root/repo/target/debug/deps/tableB_broadcast-5aa80226484ed193: crates/bench/src/bin/tableB_broadcast.rs

crates/bench/src/bin/tableB_broadcast.rs:
