/root/repo/target/debug/deps/ablation_payload_size-5831110cee96bae5.d: crates/bench/src/bin/ablation_payload_size.rs Cargo.toml

/root/repo/target/debug/deps/libablation_payload_size-5831110cee96bae5.rmeta: crates/bench/src/bin/ablation_payload_size.rs Cargo.toml

crates/bench/src/bin/ablation_payload_size.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
