/root/repo/target/debug/deps/ablation_codec_memory-eb20b8e4425f40f2.d: crates/bench/src/bin/ablation_codec_memory.rs

/root/repo/target/debug/deps/ablation_codec_memory-eb20b8e4425f40f2: crates/bench/src/bin/ablation_codec_memory.rs

crates/bench/src/bin/ablation_codec_memory.rs:
