/root/repo/target/debug/deps/fig15_optimistic-043674d28c83bb18.d: crates/bench/src/bin/fig15_optimistic.rs

/root/repo/target/debug/deps/fig15_optimistic-043674d28c83bb18: crates/bench/src/bin/fig15_optimistic.rs

crates/bench/src/bin/fig15_optimistic.rs:
