/root/repo/target/debug/deps/ablation_oversampling-97e1ce1a09d4c079.d: crates/bench/src/bin/ablation_oversampling.rs Cargo.toml

/root/repo/target/debug/deps/libablation_oversampling-97e1ce1a09d4c079.rmeta: crates/bench/src/bin/ablation_oversampling.rs Cargo.toml

crates/bench/src/bin/ablation_oversampling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
