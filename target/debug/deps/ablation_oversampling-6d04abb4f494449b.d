/root/repo/target/debug/deps/ablation_oversampling-6d04abb4f494449b.d: crates/bench/src/bin/ablation_oversampling.rs

/root/repo/target/debug/deps/libablation_oversampling-6d04abb4f494449b.rmeta: crates/bench/src/bin/ablation_oversampling.rs

crates/bench/src/bin/ablation_oversampling.rs:
