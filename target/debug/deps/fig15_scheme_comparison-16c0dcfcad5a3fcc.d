/root/repo/target/debug/deps/fig15_scheme_comparison-16c0dcfcad5a3fcc.d: crates/bench/src/bin/fig15_scheme_comparison.rs

/root/repo/target/debug/deps/fig15_scheme_comparison-16c0dcfcad5a3fcc: crates/bench/src/bin/fig15_scheme_comparison.rs

crates/bench/src/bin/fig15_scheme_comparison.rs:
