/root/repo/target/debug/deps/hw_loop-5ed79e2f68f31b08.d: tests/hw_loop.rs

/root/repo/target/debug/deps/libhw_loop-5ed79e2f68f31b08.rmeta: tests/hw_loop.rs

tests/hw_loop.rs:
