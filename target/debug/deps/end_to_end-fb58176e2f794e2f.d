/root/repo/target/debug/deps/end_to_end-fb58176e2f794e2f.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-fb58176e2f794e2f: tests/end_to_end.rs

tests/end_to_end.rs:
