/root/repo/target/debug/deps/fig16_distance-c9a21f62c8529b88.d: crates/bench/src/bin/fig16_distance.rs

/root/repo/target/debug/deps/fig16_distance-c9a21f62c8529b88: crates/bench/src/bin/fig16_distance.rs

crates/bench/src/bin/fig16_distance.rs:
