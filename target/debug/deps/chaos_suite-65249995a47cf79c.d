/root/repo/target/debug/deps/chaos_suite-65249995a47cf79c.d: crates/bench/src/bin/chaos_suite.rs

/root/repo/target/debug/deps/chaos_suite-65249995a47cf79c: crates/bench/src/bin/chaos_suite.rs

crates/bench/src/bin/chaos_suite.rs:
