/root/repo/target/debug/deps/smartvlc-5010f821810e59c9.d: src/bin/smartvlc.rs

/root/repo/target/debug/deps/smartvlc-5010f821810e59c9: src/bin/smartvlc.rs

src/bin/smartvlc.rs:
