/root/repo/target/debug/deps/fig15_optimistic-71f61bbb1b451eb4.d: crates/bench/src/bin/fig15_optimistic.rs

/root/repo/target/debug/deps/fig15_optimistic-71f61bbb1b451eb4: crates/bench/src/bin/fig15_optimistic.rs

crates/bench/src/bin/fig15_optimistic.rs:
