/root/repo/target/debug/deps/vlc_channel-57232dad318fc0b6.d: crates/vlc-channel/src/lib.rs crates/vlc-channel/src/ambient.rs crates/vlc-channel/src/detector.rs crates/vlc-channel/src/faults.rs crates/vlc-channel/src/frontend.rs crates/vlc-channel/src/led.rs crates/vlc-channel/src/link.rs crates/vlc-channel/src/optics.rs crates/vlc-channel/src/photodiode.rs crates/vlc-channel/src/shadowing.rs Cargo.toml

/root/repo/target/debug/deps/libvlc_channel-57232dad318fc0b6.rmeta: crates/vlc-channel/src/lib.rs crates/vlc-channel/src/ambient.rs crates/vlc-channel/src/detector.rs crates/vlc-channel/src/faults.rs crates/vlc-channel/src/frontend.rs crates/vlc-channel/src/led.rs crates/vlc-channel/src/link.rs crates/vlc-channel/src/optics.rs crates/vlc-channel/src/photodiode.rs crates/vlc-channel/src/shadowing.rs Cargo.toml

crates/vlc-channel/src/lib.rs:
crates/vlc-channel/src/ambient.rs:
crates/vlc-channel/src/detector.rs:
crates/vlc-channel/src/faults.rs:
crates/vlc-channel/src/frontend.rs:
crates/vlc-channel/src/led.rs:
crates/vlc-channel/src/link.rs:
crates/vlc-channel/src/optics.rs:
crates/vlc-channel/src/photodiode.rs:
crates/vlc-channel/src/shadowing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
