/root/repo/target/debug/deps/fig10_adaptation_domains-70c976a3f9b01896.d: crates/bench/src/bin/fig10_adaptation_domains.rs

/root/repo/target/debug/deps/fig10_adaptation_domains-70c976a3f9b01896: crates/bench/src/bin/fig10_adaptation_domains.rs

crates/bench/src/bin/fig10_adaptation_domains.rs:
