/root/repo/target/debug/deps/fig05_resolution-3c497d398bf5d7b4.d: crates/bench/src/bin/fig05_resolution.rs

/root/repo/target/debug/deps/fig05_resolution-3c497d398bf5d7b4: crates/bench/src/bin/fig05_resolution.rs

crates/bench/src/bin/fig05_resolution.rs:
