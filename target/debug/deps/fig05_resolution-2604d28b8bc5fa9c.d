/root/repo/target/debug/deps/fig05_resolution-2604d28b8bc5fa9c.d: crates/bench/src/bin/fig05_resolution.rs

/root/repo/target/debug/deps/fig05_resolution-2604d28b8bc5fa9c: crates/bench/src/bin/fig05_resolution.rs

crates/bench/src/bin/fig05_resolution.rs:
