/root/repo/target/debug/deps/props-f3763cbce8529d7f.d: tests/props.rs

/root/repo/target/debug/deps/props-f3763cbce8529d7f: tests/props.rs

tests/props.rs:
