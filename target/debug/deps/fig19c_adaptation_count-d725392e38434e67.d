/root/repo/target/debug/deps/fig19c_adaptation_count-d725392e38434e67.d: crates/bench/src/bin/fig19c_adaptation_count.rs

/root/repo/target/debug/deps/fig19c_adaptation_count-d725392e38434e67: crates/bench/src/bin/fig19c_adaptation_count.rs

crates/bench/src/bin/fig19c_adaptation_count.rs:
