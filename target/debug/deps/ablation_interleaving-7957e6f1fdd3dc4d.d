/root/repo/target/debug/deps/ablation_interleaving-7957e6f1fdd3dc4d.d: crates/bench/src/bin/ablation_interleaving.rs

/root/repo/target/debug/deps/libablation_interleaving-7957e6f1fdd3dc4d.rmeta: crates/bench/src/bin/ablation_interleaving.rs

crates/bench/src/bin/ablation_interleaving.rs:
