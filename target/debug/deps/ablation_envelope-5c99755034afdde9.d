/root/repo/target/debug/deps/ablation_envelope-5c99755034afdde9.d: crates/bench/src/bin/ablation_envelope.rs

/root/repo/target/debug/deps/libablation_envelope-5c99755034afdde9.rmeta: crates/bench/src/bin/ablation_envelope.rs

crates/bench/src/bin/ablation_envelope.rs:
