/root/repo/target/debug/deps/smartvlc_bench-d438d1bf91f41789.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsmartvlc_bench-d438d1bf91f41789.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
