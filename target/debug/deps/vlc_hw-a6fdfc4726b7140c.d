/root/repo/target/debug/deps/vlc_hw-a6fdfc4726b7140c.d: crates/vlc-hw/src/lib.rs crates/vlc-hw/src/board.rs crates/vlc-hw/src/gpio.rs crates/vlc-hw/src/pru.rs crates/vlc-hw/src/sampler.rs crates/vlc-hw/src/shmem.rs crates/vlc-hw/src/wifi.rs

/root/repo/target/debug/deps/vlc_hw-a6fdfc4726b7140c: crates/vlc-hw/src/lib.rs crates/vlc-hw/src/board.rs crates/vlc-hw/src/gpio.rs crates/vlc-hw/src/pru.rs crates/vlc-hw/src/sampler.rs crates/vlc-hw/src/shmem.rs crates/vlc-hw/src/wifi.rs

crates/vlc-hw/src/lib.rs:
crates/vlc-hw/src/board.rs:
crates/vlc-hw/src/gpio.rs:
crates/vlc-hw/src/pru.rs:
crates/vlc-hw/src/sampler.rs:
crates/vlc-hw/src/shmem.rs:
crates/vlc-hw/src/wifi.rs:
