/root/repo/target/debug/deps/proptests-caa9b2ed2010317c.d: crates/desim/tests/proptests.rs

/root/repo/target/debug/deps/proptests-caa9b2ed2010317c: crates/desim/tests/proptests.rs

crates/desim/tests/proptests.rs:
