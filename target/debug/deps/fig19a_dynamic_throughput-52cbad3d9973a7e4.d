/root/repo/target/debug/deps/fig19a_dynamic_throughput-52cbad3d9973a7e4.d: crates/bench/src/bin/fig19a_dynamic_throughput.rs

/root/repo/target/debug/deps/fig19a_dynamic_throughput-52cbad3d9973a7e4: crates/bench/src/bin/fig19a_dynamic_throughput.rs

crates/bench/src/bin/fig19a_dynamic_throughput.rs:
