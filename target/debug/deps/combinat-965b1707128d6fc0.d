/root/repo/target/debug/deps/combinat-965b1707128d6fc0.d: crates/combinat/src/lib.rs crates/combinat/src/biguint.rs crates/combinat/src/binomial.rs crates/combinat/src/bits.rs crates/combinat/src/codeword.rs crates/combinat/src/tabulated.rs

/root/repo/target/debug/deps/libcombinat-965b1707128d6fc0.rmeta: crates/combinat/src/lib.rs crates/combinat/src/biguint.rs crates/combinat/src/binomial.rs crates/combinat/src/bits.rs crates/combinat/src/codeword.rs crates/combinat/src/tabulated.rs

crates/combinat/src/lib.rs:
crates/combinat/src/biguint.rs:
crates/combinat/src/binomial.rs:
crates/combinat/src/bits.rs:
crates/combinat/src/codeword.rs:
crates/combinat/src/tabulated.rs:
