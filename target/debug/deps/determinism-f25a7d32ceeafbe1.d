/root/repo/target/debug/deps/determinism-f25a7d32ceeafbe1.d: crates/smartvlc-sim/tests/determinism.rs

/root/repo/target/debug/deps/determinism-f25a7d32ceeafbe1: crates/smartvlc-sim/tests/determinism.rs

crates/smartvlc-sim/tests/determinism.rs:
