/root/repo/target/debug/deps/smartvlc-2eaae50d14c734ef.d: src/lib.rs src/cli.rs

/root/repo/target/debug/deps/libsmartvlc-2eaae50d14c734ef.rmeta: src/lib.rs src/cli.rs

src/lib.rs:
src/cli.rs:
