/root/repo/target/debug/deps/fig05_resolution-4f5168614a5282bc.d: crates/bench/src/bin/fig05_resolution.rs

/root/repo/target/debug/deps/libfig05_resolution-4f5168614a5282bc.rmeta: crates/bench/src/bin/fig05_resolution.rs

crates/bench/src/bin/fig05_resolution.rs:
