/root/repo/target/debug/deps/fig19c_adaptation_count-2ee21ca57fccd292.d: crates/bench/src/bin/fig19c_adaptation_count.rs Cargo.toml

/root/repo/target/debug/deps/libfig19c_adaptation_count-2ee21ca57fccd292.rmeta: crates/bench/src/bin/fig19c_adaptation_count.rs Cargo.toml

crates/bench/src/bin/fig19c_adaptation_count.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
