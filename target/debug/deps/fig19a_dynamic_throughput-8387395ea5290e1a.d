/root/repo/target/debug/deps/fig19a_dynamic_throughput-8387395ea5290e1a.d: crates/bench/src/bin/fig19a_dynamic_throughput.rs

/root/repo/target/debug/deps/libfig19a_dynamic_throughput-8387395ea5290e1a.rmeta: crates/bench/src/bin/fig19a_dynamic_throughput.rs

crates/bench/src/bin/fig19a_dynamic_throughput.rs:
