/root/repo/target/debug/deps/tableB_broadcast-7ee9553fe9ea8619.d: crates/bench/src/bin/tableB_broadcast.rs

/root/repo/target/debug/deps/tableB_broadcast-7ee9553fe9ea8619: crates/bench/src/bin/tableB_broadcast.rs

crates/bench/src/bin/tableB_broadcast.rs:
