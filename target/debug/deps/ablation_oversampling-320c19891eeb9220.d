/root/repo/target/debug/deps/ablation_oversampling-320c19891eeb9220.d: crates/bench/src/bin/ablation_oversampling.rs Cargo.toml

/root/repo/target/debug/deps/libablation_oversampling-320c19891eeb9220.rmeta: crates/bench/src/bin/ablation_oversampling.rs Cargo.toml

crates/bench/src/bin/ablation_oversampling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
