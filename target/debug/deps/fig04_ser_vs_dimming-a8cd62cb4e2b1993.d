/root/repo/target/debug/deps/fig04_ser_vs_dimming-a8cd62cb4e2b1993.d: crates/bench/src/bin/fig04_ser_vs_dimming.rs Cargo.toml

/root/repo/target/debug/deps/libfig04_ser_vs_dimming-a8cd62cb4e2b1993.rmeta: crates/bench/src/bin/fig04_ser_vs_dimming.rs Cargo.toml

crates/bench/src/bin/fig04_ser_vs_dimming.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
