/root/repo/target/debug/deps/fig08_candidate_filter-7bee11bf1a34a9f1.d: crates/bench/src/bin/fig08_candidate_filter.rs

/root/repo/target/debug/deps/fig08_candidate_filter-7bee11bf1a34a9f1: crates/bench/src/bin/fig08_candidate_filter.rs

crates/bench/src/bin/fig08_candidate_filter.rs:
