/root/repo/target/debug/deps/fig17_incidence-16540a3eb3c249e3.d: crates/bench/src/bin/fig17_incidence.rs

/root/repo/target/debug/deps/fig17_incidence-16540a3eb3c249e3: crates/bench/src/bin/fig17_incidence.rs

crates/bench/src/bin/fig17_incidence.rs:
