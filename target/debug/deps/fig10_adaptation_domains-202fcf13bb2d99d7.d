/root/repo/target/debug/deps/fig10_adaptation_domains-202fcf13bb2d99d7.d: crates/bench/src/bin/fig10_adaptation_domains.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_adaptation_domains-202fcf13bb2d99d7.rmeta: crates/bench/src/bin/fig10_adaptation_domains.rs Cargo.toml

crates/bench/src/bin/fig10_adaptation_domains.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
