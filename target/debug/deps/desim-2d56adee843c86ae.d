/root/repo/target/debug/deps/desim-2d56adee843c86ae.d: crates/desim/src/lib.rs crates/desim/src/process.rs crates/desim/src/rng.rs crates/desim/src/scheduler.rs crates/desim/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libdesim-2d56adee843c86ae.rmeta: crates/desim/src/lib.rs crates/desim/src/process.rs crates/desim/src/rng.rs crates/desim/src/scheduler.rs crates/desim/src/time.rs Cargo.toml

crates/desim/src/lib.rs:
crates/desim/src/process.rs:
crates/desim/src/rng.rs:
crates/desim/src/scheduler.rs:
crates/desim/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
