/root/repo/target/debug/deps/fig04_ser_vs_dimming-bdc0fd037863eccb.d: crates/bench/src/bin/fig04_ser_vs_dimming.rs

/root/repo/target/debug/deps/libfig04_ser_vs_dimming-bdc0fd037863eccb.rmeta: crates/bench/src/bin/fig04_ser_vs_dimming.rs

crates/bench/src/bin/fig04_ser_vs_dimming.rs:
