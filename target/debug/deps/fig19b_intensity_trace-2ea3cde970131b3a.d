/root/repo/target/debug/deps/fig19b_intensity_trace-2ea3cde970131b3a.d: crates/bench/src/bin/fig19b_intensity_trace.rs

/root/repo/target/debug/deps/fig19b_intensity_trace-2ea3cde970131b3a: crates/bench/src/bin/fig19b_intensity_trace.rs

crates/bench/src/bin/fig19b_intensity_trace.rs:
