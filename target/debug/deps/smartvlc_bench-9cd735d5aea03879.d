/root/repo/target/debug/deps/smartvlc_bench-9cd735d5aea03879.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsmartvlc_bench-9cd735d5aea03879.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
