/root/repo/target/debug/deps/fig15_optimistic-8ce66c7cd908a457.d: crates/bench/src/bin/fig15_optimistic.rs Cargo.toml

/root/repo/target/debug/deps/libfig15_optimistic-8ce66c7cd908a457.rmeta: crates/bench/src/bin/fig15_optimistic.rs Cargo.toml

crates/bench/src/bin/fig15_optimistic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
