/root/repo/target/debug/deps/props-d4003cc6d1e7bef6.d: tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-d4003cc6d1e7bef6.rmeta: tests/props.rs Cargo.toml

tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
