/root/repo/target/debug/deps/smartvlc-98905028c12e73e2.d: src/lib.rs src/cli.rs

/root/repo/target/debug/deps/libsmartvlc-98905028c12e73e2.rmeta: src/lib.rs src/cli.rs

src/lib.rs:
src/cli.rs:
