/root/repo/target/debug/deps/tableC_vlc_uplink-cf55769f17b4b96c.d: crates/bench/src/bin/tableC_vlc_uplink.rs Cargo.toml

/root/repo/target/debug/deps/libtableC_vlc_uplink-cf55769f17b4b96c.rmeta: crates/bench/src/bin/tableC_vlc_uplink.rs Cargo.toml

crates/bench/src/bin/tableC_vlc_uplink.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
