/root/repo/target/debug/deps/fig08_candidate_filter-e59b269e15bb97a7.d: crates/bench/src/bin/fig08_candidate_filter.rs

/root/repo/target/debug/deps/libfig08_candidate_filter-e59b269e15bb97a7.rmeta: crates/bench/src/bin/fig08_candidate_filter.rs

crates/bench/src/bin/fig08_candidate_filter.rs:
