/root/repo/target/debug/deps/fig17_incidence-c9943134110f81be.d: crates/bench/src/bin/fig17_incidence.rs

/root/repo/target/debug/deps/libfig17_incidence-c9943134110f81be.rmeta: crates/bench/src/bin/fig17_incidence.rs

crates/bench/src/bin/fig17_incidence.rs:
