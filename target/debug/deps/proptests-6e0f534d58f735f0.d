/root/repo/target/debug/deps/proptests-6e0f534d58f735f0.d: crates/smartvlc-core/tests/proptests.rs

/root/repo/target/debug/deps/proptests-6e0f534d58f735f0: crates/smartvlc-core/tests/proptests.rs

crates/smartvlc-core/tests/proptests.rs:
