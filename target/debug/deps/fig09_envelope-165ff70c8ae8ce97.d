/root/repo/target/debug/deps/fig09_envelope-165ff70c8ae8ce97.d: crates/bench/src/bin/fig09_envelope.rs

/root/repo/target/debug/deps/fig09_envelope-165ff70c8ae8ce97: crates/bench/src/bin/fig09_envelope.rs

crates/bench/src/bin/fig09_envelope.rs:
