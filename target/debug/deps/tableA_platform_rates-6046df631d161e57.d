/root/repo/target/debug/deps/tableA_platform_rates-6046df631d161e57.d: crates/bench/src/bin/tableA_platform_rates.rs

/root/repo/target/debug/deps/libtableA_platform_rates-6046df631d161e57.rmeta: crates/bench/src/bin/tableA_platform_rates.rs

crates/bench/src/bin/tableA_platform_rates.rs:
