/root/repo/target/debug/deps/planner_shared_table-e3dcc4ddaf15e113.d: crates/bench/benches/planner_shared_table.rs Cargo.toml

/root/repo/target/debug/deps/libplanner_shared_table-e3dcc4ddaf15e113.rmeta: crates/bench/benches/planner_shared_table.rs Cargo.toml

crates/bench/benches/planner_shared_table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
