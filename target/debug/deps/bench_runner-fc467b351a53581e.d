/root/repo/target/debug/deps/bench_runner-fc467b351a53581e.d: crates/bench/src/bin/bench_runner.rs Cargo.toml

/root/repo/target/debug/deps/libbench_runner-fc467b351a53581e.rmeta: crates/bench/src/bin/bench_runner.rs Cargo.toml

crates/bench/src/bin/bench_runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
