/root/repo/target/debug/deps/tableC_vlc_uplink-63d37c4fe2fdacf8.d: crates/bench/src/bin/tableC_vlc_uplink.rs

/root/repo/target/debug/deps/tableC_vlc_uplink-63d37c4fe2fdacf8: crates/bench/src/bin/tableC_vlc_uplink.rs

crates/bench/src/bin/tableC_vlc_uplink.rs:
