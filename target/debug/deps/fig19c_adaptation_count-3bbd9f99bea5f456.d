/root/repo/target/debug/deps/fig19c_adaptation_count-3bbd9f99bea5f456.d: crates/bench/src/bin/fig19c_adaptation_count.rs

/root/repo/target/debug/deps/libfig19c_adaptation_count-3bbd9f99bea5f456.rmeta: crates/bench/src/bin/fig19c_adaptation_count.rs

crates/bench/src/bin/fig19c_adaptation_count.rs:
