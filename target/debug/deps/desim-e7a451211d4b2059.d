/root/repo/target/debug/deps/desim-e7a451211d4b2059.d: crates/desim/src/lib.rs crates/desim/src/process.rs crates/desim/src/rng.rs crates/desim/src/scheduler.rs crates/desim/src/time.rs

/root/repo/target/debug/deps/libdesim-e7a451211d4b2059.rlib: crates/desim/src/lib.rs crates/desim/src/process.rs crates/desim/src/rng.rs crates/desim/src/scheduler.rs crates/desim/src/time.rs

/root/repo/target/debug/deps/libdesim-e7a451211d4b2059.rmeta: crates/desim/src/lib.rs crates/desim/src/process.rs crates/desim/src/rng.rs crates/desim/src/scheduler.rs crates/desim/src/time.rs

crates/desim/src/lib.rs:
crates/desim/src/process.rs:
crates/desim/src/rng.rs:
crates/desim/src/scheduler.rs:
crates/desim/src/time.rs:
