/root/repo/target/debug/deps/combinat-e88da399fd8ae407.d: crates/combinat/src/lib.rs crates/combinat/src/biguint.rs crates/combinat/src/binomial.rs crates/combinat/src/bits.rs crates/combinat/src/codeword.rs crates/combinat/src/tabulated.rs Cargo.toml

/root/repo/target/debug/deps/libcombinat-e88da399fd8ae407.rmeta: crates/combinat/src/lib.rs crates/combinat/src/biguint.rs crates/combinat/src/binomial.rs crates/combinat/src/bits.rs crates/combinat/src/codeword.rs crates/combinat/src/tabulated.rs Cargo.toml

crates/combinat/src/lib.rs:
crates/combinat/src/biguint.rs:
crates/combinat/src/binomial.rs:
crates/combinat/src/bits.rs:
crates/combinat/src/codeword.rs:
crates/combinat/src/tabulated.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
