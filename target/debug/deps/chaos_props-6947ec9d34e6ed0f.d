/root/repo/target/debug/deps/chaos_props-6947ec9d34e6ed0f.d: crates/smartvlc-link/tests/chaos_props.rs

/root/repo/target/debug/deps/chaos_props-6947ec9d34e6ed0f: crates/smartvlc-link/tests/chaos_props.rs

crates/smartvlc-link/tests/chaos_props.rs:
