/root/repo/target/debug/deps/fig16_distance-f87b7909bb15c4bd.d: crates/bench/src/bin/fig16_distance.rs

/root/repo/target/debug/deps/libfig16_distance-f87b7909bb15c4bd.rmeta: crates/bench/src/bin/fig16_distance.rs

crates/bench/src/bin/fig16_distance.rs:
