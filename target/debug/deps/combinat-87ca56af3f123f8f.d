/root/repo/target/debug/deps/combinat-87ca56af3f123f8f.d: crates/combinat/src/lib.rs crates/combinat/src/biguint.rs crates/combinat/src/binomial.rs crates/combinat/src/bits.rs crates/combinat/src/codeword.rs crates/combinat/src/tabulated.rs

/root/repo/target/debug/deps/combinat-87ca56af3f123f8f: crates/combinat/src/lib.rs crates/combinat/src/biguint.rs crates/combinat/src/binomial.rs crates/combinat/src/bits.rs crates/combinat/src/codeword.rs crates/combinat/src/tabulated.rs

crates/combinat/src/lib.rs:
crates/combinat/src/biguint.rs:
crates/combinat/src/binomial.rs:
crates/combinat/src/bits.rs:
crates/combinat/src/codeword.rs:
crates/combinat/src/tabulated.rs:
