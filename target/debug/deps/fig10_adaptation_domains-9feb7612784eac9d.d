/root/repo/target/debug/deps/fig10_adaptation_domains-9feb7612784eac9d.d: crates/bench/src/bin/fig10_adaptation_domains.rs

/root/repo/target/debug/deps/fig10_adaptation_domains-9feb7612784eac9d: crates/bench/src/bin/fig10_adaptation_domains.rs

crates/bench/src/bin/fig10_adaptation_domains.rs:
