/root/repo/target/debug/deps/fig15_scheme_comparison-07b74b8ff86e6d86.d: crates/bench/src/bin/fig15_scheme_comparison.rs

/root/repo/target/debug/deps/fig15_scheme_comparison-07b74b8ff86e6d86: crates/bench/src/bin/fig15_scheme_comparison.rs

crates/bench/src/bin/fig15_scheme_comparison.rs:
