/root/repo/target/debug/deps/proptests-1a32d37dbab95ced.d: crates/smartvlc-core/tests/proptests.rs

/root/repo/target/debug/deps/libproptests-1a32d37dbab95ced.rmeta: crates/smartvlc-core/tests/proptests.rs

crates/smartvlc-core/tests/proptests.rs:
