/root/repo/target/debug/deps/fig19b_intensity_trace-e26bb122dc52ca01.d: crates/bench/src/bin/fig19b_intensity_trace.rs Cargo.toml

/root/repo/target/debug/deps/libfig19b_intensity_trace-e26bb122dc52ca01.rmeta: crates/bench/src/bin/fig19b_intensity_trace.rs Cargo.toml

crates/bench/src/bin/fig19b_intensity_trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
