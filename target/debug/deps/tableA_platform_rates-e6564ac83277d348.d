/root/repo/target/debug/deps/tableA_platform_rates-e6564ac83277d348.d: crates/bench/src/bin/tableA_platform_rates.rs Cargo.toml

/root/repo/target/debug/deps/libtableA_platform_rates-e6564ac83277d348.rmeta: crates/bench/src/bin/tableA_platform_rates.rs Cargo.toml

crates/bench/src/bin/tableA_platform_rates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
