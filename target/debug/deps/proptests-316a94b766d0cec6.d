/root/repo/target/debug/deps/proptests-316a94b766d0cec6.d: crates/combinat/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-316a94b766d0cec6.rmeta: crates/combinat/tests/proptests.rs Cargo.toml

crates/combinat/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
