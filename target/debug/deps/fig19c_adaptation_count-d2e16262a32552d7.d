/root/repo/target/debug/deps/fig19c_adaptation_count-d2e16262a32552d7.d: crates/bench/src/bin/fig19c_adaptation_count.rs

/root/repo/target/debug/deps/fig19c_adaptation_count-d2e16262a32552d7: crates/bench/src/bin/fig19c_adaptation_count.rs

crates/bench/src/bin/fig19c_adaptation_count.rs:
