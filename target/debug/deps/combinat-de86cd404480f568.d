/root/repo/target/debug/deps/combinat-de86cd404480f568.d: crates/combinat/src/lib.rs crates/combinat/src/biguint.rs crates/combinat/src/binomial.rs crates/combinat/src/bits.rs crates/combinat/src/codeword.rs crates/combinat/src/tabulated.rs

/root/repo/target/debug/deps/libcombinat-de86cd404480f568.rlib: crates/combinat/src/lib.rs crates/combinat/src/biguint.rs crates/combinat/src/binomial.rs crates/combinat/src/bits.rs crates/combinat/src/codeword.rs crates/combinat/src/tabulated.rs

/root/repo/target/debug/deps/libcombinat-de86cd404480f568.rmeta: crates/combinat/src/lib.rs crates/combinat/src/biguint.rs crates/combinat/src/binomial.rs crates/combinat/src/bits.rs crates/combinat/src/codeword.rs crates/combinat/src/tabulated.rs

crates/combinat/src/lib.rs:
crates/combinat/src/biguint.rs:
crates/combinat/src/binomial.rs:
crates/combinat/src/bits.rs:
crates/combinat/src/codeword.rs:
crates/combinat/src/tabulated.rs:
