/root/repo/target/debug/deps/fig15_scheme_comparison-bf945f2952866e0a.d: crates/bench/src/bin/fig15_scheme_comparison.rs

/root/repo/target/debug/deps/fig15_scheme_comparison-bf945f2952866e0a: crates/bench/src/bin/fig15_scheme_comparison.rs

crates/bench/src/bin/fig15_scheme_comparison.rs:
