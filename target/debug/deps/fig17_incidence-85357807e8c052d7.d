/root/repo/target/debug/deps/fig17_incidence-85357807e8c052d7.d: crates/bench/src/bin/fig17_incidence.rs Cargo.toml

/root/repo/target/debug/deps/libfig17_incidence-85357807e8c052d7.rmeta: crates/bench/src/bin/fig17_incidence.rs Cargo.toml

crates/bench/src/bin/fig17_incidence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
