/root/repo/target/debug/deps/ablation_interleaving-678be826a8065eb7.d: crates/bench/src/bin/ablation_interleaving.rs

/root/repo/target/debug/deps/ablation_interleaving-678be826a8065eb7: crates/bench/src/bin/ablation_interleaving.rs

crates/bench/src/bin/ablation_interleaving.rs:
