/root/repo/target/debug/deps/bench_runner-f222b242ab4d5b36.d: crates/bench/src/bin/bench_runner.rs Cargo.toml

/root/repo/target/debug/deps/libbench_runner-f222b242ab4d5b36.rmeta: crates/bench/src/bin/bench_runner.rs Cargo.toml

crates/bench/src/bin/bench_runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
