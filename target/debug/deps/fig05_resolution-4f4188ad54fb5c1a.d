/root/repo/target/debug/deps/fig05_resolution-4f4188ad54fb5c1a.d: crates/bench/src/bin/fig05_resolution.rs

/root/repo/target/debug/deps/libfig05_resolution-4f4188ad54fb5c1a.rmeta: crates/bench/src/bin/fig05_resolution.rs

crates/bench/src/bin/fig05_resolution.rs:
