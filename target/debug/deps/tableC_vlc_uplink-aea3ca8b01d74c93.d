/root/repo/target/debug/deps/tableC_vlc_uplink-aea3ca8b01d74c93.d: crates/bench/src/bin/tableC_vlc_uplink.rs

/root/repo/target/debug/deps/libtableC_vlc_uplink-aea3ca8b01d74c93.rmeta: crates/bench/src/bin/tableC_vlc_uplink.rs

crates/bench/src/bin/tableC_vlc_uplink.rs:
