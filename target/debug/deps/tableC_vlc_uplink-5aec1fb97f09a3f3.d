/root/repo/target/debug/deps/tableC_vlc_uplink-5aec1fb97f09a3f3.d: crates/bench/src/bin/tableC_vlc_uplink.rs

/root/repo/target/debug/deps/libtableC_vlc_uplink-5aec1fb97f09a3f3.rmeta: crates/bench/src/bin/tableC_vlc_uplink.rs

crates/bench/src/bin/tableC_vlc_uplink.rs:
