/root/repo/target/debug/deps/fig06_multiplexing_levels-b9535313855c341b.d: crates/bench/src/bin/fig06_multiplexing_levels.rs

/root/repo/target/debug/deps/fig06_multiplexing_levels-b9535313855c341b: crates/bench/src/bin/fig06_multiplexing_levels.rs

crates/bench/src/bin/fig06_multiplexing_levels.rs:
