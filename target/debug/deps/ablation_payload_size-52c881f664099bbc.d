/root/repo/target/debug/deps/ablation_payload_size-52c881f664099bbc.d: crates/bench/src/bin/ablation_payload_size.rs

/root/repo/target/debug/deps/libablation_payload_size-52c881f664099bbc.rmeta: crates/bench/src/bin/ablation_payload_size.rs

crates/bench/src/bin/ablation_payload_size.rs:
