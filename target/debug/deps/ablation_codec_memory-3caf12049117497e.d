/root/repo/target/debug/deps/ablation_codec_memory-3caf12049117497e.d: crates/bench/src/bin/ablation_codec_memory.rs

/root/repo/target/debug/deps/libablation_codec_memory-3caf12049117497e.rmeta: crates/bench/src/bin/ablation_codec_memory.rs

crates/bench/src/bin/ablation_codec_memory.rs:
