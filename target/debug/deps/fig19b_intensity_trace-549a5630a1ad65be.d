/root/repo/target/debug/deps/fig19b_intensity_trace-549a5630a1ad65be.d: crates/bench/src/bin/fig19b_intensity_trace.rs

/root/repo/target/debug/deps/libfig19b_intensity_trace-549a5630a1ad65be.rmeta: crates/bench/src/bin/fig19b_intensity_trace.rs

crates/bench/src/bin/fig19b_intensity_trace.rs:
