/root/repo/target/debug/deps/planner-48d174cf6755c622.d: crates/bench/benches/planner.rs

/root/repo/target/debug/deps/planner-48d174cf6755c622: crates/bench/benches/planner.rs

crates/bench/benches/planner.rs:
