/root/repo/target/debug/deps/ablation_interleaving-45b67d08ba84512f.d: crates/bench/src/bin/ablation_interleaving.rs

/root/repo/target/debug/deps/ablation_interleaving-45b67d08ba84512f: crates/bench/src/bin/ablation_interleaving.rs

crates/bench/src/bin/ablation_interleaving.rs:
