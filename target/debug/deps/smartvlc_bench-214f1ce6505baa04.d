/root/repo/target/debug/deps/smartvlc_bench-214f1ce6505baa04.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/smartvlc_bench-214f1ce6505baa04: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
