/root/repo/target/debug/deps/ablation_interleaving-7c44e244cec4a798.d: crates/bench/src/bin/ablation_interleaving.rs

/root/repo/target/debug/deps/libablation_interleaving-7c44e244cec4a798.rmeta: crates/bench/src/bin/ablation_interleaving.rs

crates/bench/src/bin/ablation_interleaving.rs:
