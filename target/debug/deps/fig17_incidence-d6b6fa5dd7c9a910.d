/root/repo/target/debug/deps/fig17_incidence-d6b6fa5dd7c9a910.d: crates/bench/src/bin/fig17_incidence.rs Cargo.toml

/root/repo/target/debug/deps/libfig17_incidence-d6b6fa5dd7c9a910.rmeta: crates/bench/src/bin/fig17_incidence.rs Cargo.toml

crates/bench/src/bin/fig17_incidence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
