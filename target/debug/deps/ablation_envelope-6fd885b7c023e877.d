/root/repo/target/debug/deps/ablation_envelope-6fd885b7c023e877.d: crates/bench/src/bin/ablation_envelope.rs

/root/repo/target/debug/deps/ablation_envelope-6fd885b7c023e877: crates/bench/src/bin/ablation_envelope.rs

crates/bench/src/bin/ablation_envelope.rs:
