/root/repo/target/debug/deps/smartvlc-e58e586e829a74fd.d: src/lib.rs src/cli.rs

/root/repo/target/debug/deps/libsmartvlc-e58e586e829a74fd.rlib: src/lib.rs src/cli.rs

/root/repo/target/debug/deps/libsmartvlc-e58e586e829a74fd.rmeta: src/lib.rs src/cli.rs

src/lib.rs:
src/cli.rs:
