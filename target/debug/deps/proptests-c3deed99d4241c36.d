/root/repo/target/debug/deps/proptests-c3deed99d4241c36.d: crates/smartvlc-core/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-c3deed99d4241c36.rmeta: crates/smartvlc-core/tests/proptests.rs Cargo.toml

crates/smartvlc-core/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
