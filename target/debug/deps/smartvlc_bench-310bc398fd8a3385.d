/root/repo/target/debug/deps/smartvlc_bench-310bc398fd8a3385.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsmartvlc_bench-310bc398fd8a3385.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
