/root/repo/target/debug/deps/ablation_envelope-59713d6a154ba491.d: crates/bench/src/bin/ablation_envelope.rs

/root/repo/target/debug/deps/libablation_envelope-59713d6a154ba491.rmeta: crates/bench/src/bin/ablation_envelope.rs

crates/bench/src/bin/ablation_envelope.rs:
