/root/repo/target/debug/deps/smartvlc_core-314fbd223bdea885.d: crates/smartvlc-core/src/lib.rs crates/smartvlc-core/src/adaptation.rs crates/smartvlc-core/src/amppm/mod.rs crates/smartvlc-core/src/amppm/candidates.rs crates/smartvlc-core/src/amppm/envelope.rs crates/smartvlc-core/src/amppm/mixer.rs crates/smartvlc-core/src/amppm/planner.rs crates/smartvlc-core/src/amppm/resolution.rs crates/smartvlc-core/src/amppm/super_symbol.rs crates/smartvlc-core/src/config.rs crates/smartvlc-core/src/dimming.rs crates/smartvlc-core/src/flicker.rs crates/smartvlc-core/src/frame/mod.rs crates/smartvlc-core/src/frame/codec.rs crates/smartvlc-core/src/frame/crc.rs crates/smartvlc-core/src/frame/format.rs crates/smartvlc-core/src/modem.rs crates/smartvlc-core/src/schemes/mod.rs crates/smartvlc-core/src/schemes/amppm_modem.rs crates/smartvlc-core/src/schemes/darklight.rs crates/smartvlc-core/src/schemes/mppm.rs crates/smartvlc-core/src/schemes/ook_ct.rs crates/smartvlc-core/src/schemes/oppm.rs crates/smartvlc-core/src/schemes/vppm.rs crates/smartvlc-core/src/ser.rs crates/smartvlc-core/src/symbol.rs

/root/repo/target/debug/deps/smartvlc_core-314fbd223bdea885: crates/smartvlc-core/src/lib.rs crates/smartvlc-core/src/adaptation.rs crates/smartvlc-core/src/amppm/mod.rs crates/smartvlc-core/src/amppm/candidates.rs crates/smartvlc-core/src/amppm/envelope.rs crates/smartvlc-core/src/amppm/mixer.rs crates/smartvlc-core/src/amppm/planner.rs crates/smartvlc-core/src/amppm/resolution.rs crates/smartvlc-core/src/amppm/super_symbol.rs crates/smartvlc-core/src/config.rs crates/smartvlc-core/src/dimming.rs crates/smartvlc-core/src/flicker.rs crates/smartvlc-core/src/frame/mod.rs crates/smartvlc-core/src/frame/codec.rs crates/smartvlc-core/src/frame/crc.rs crates/smartvlc-core/src/frame/format.rs crates/smartvlc-core/src/modem.rs crates/smartvlc-core/src/schemes/mod.rs crates/smartvlc-core/src/schemes/amppm_modem.rs crates/smartvlc-core/src/schemes/darklight.rs crates/smartvlc-core/src/schemes/mppm.rs crates/smartvlc-core/src/schemes/ook_ct.rs crates/smartvlc-core/src/schemes/oppm.rs crates/smartvlc-core/src/schemes/vppm.rs crates/smartvlc-core/src/ser.rs crates/smartvlc-core/src/symbol.rs

crates/smartvlc-core/src/lib.rs:
crates/smartvlc-core/src/adaptation.rs:
crates/smartvlc-core/src/amppm/mod.rs:
crates/smartvlc-core/src/amppm/candidates.rs:
crates/smartvlc-core/src/amppm/envelope.rs:
crates/smartvlc-core/src/amppm/mixer.rs:
crates/smartvlc-core/src/amppm/planner.rs:
crates/smartvlc-core/src/amppm/resolution.rs:
crates/smartvlc-core/src/amppm/super_symbol.rs:
crates/smartvlc-core/src/config.rs:
crates/smartvlc-core/src/dimming.rs:
crates/smartvlc-core/src/flicker.rs:
crates/smartvlc-core/src/frame/mod.rs:
crates/smartvlc-core/src/frame/codec.rs:
crates/smartvlc-core/src/frame/crc.rs:
crates/smartvlc-core/src/frame/format.rs:
crates/smartvlc-core/src/modem.rs:
crates/smartvlc-core/src/schemes/mod.rs:
crates/smartvlc-core/src/schemes/amppm_modem.rs:
crates/smartvlc-core/src/schemes/darklight.rs:
crates/smartvlc-core/src/schemes/mppm.rs:
crates/smartvlc-core/src/schemes/ook_ct.rs:
crates/smartvlc-core/src/schemes/oppm.rs:
crates/smartvlc-core/src/schemes/vppm.rs:
crates/smartvlc-core/src/ser.rs:
crates/smartvlc-core/src/symbol.rs:
