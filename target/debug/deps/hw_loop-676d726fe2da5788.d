/root/repo/target/debug/deps/hw_loop-676d726fe2da5788.d: tests/hw_loop.rs Cargo.toml

/root/repo/target/debug/deps/libhw_loop-676d726fe2da5788.rmeta: tests/hw_loop.rs Cargo.toml

tests/hw_loop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
