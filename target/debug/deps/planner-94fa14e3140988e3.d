/root/repo/target/debug/deps/planner-94fa14e3140988e3.d: crates/bench/benches/planner.rs Cargo.toml

/root/repo/target/debug/deps/libplanner-94fa14e3140988e3.rmeta: crates/bench/benches/planner.rs Cargo.toml

crates/bench/benches/planner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
