/root/repo/target/debug/deps/fig10_adaptation_domains-c1ae0786843a18f1.d: crates/bench/src/bin/fig10_adaptation_domains.rs

/root/repo/target/debug/deps/fig10_adaptation_domains-c1ae0786843a18f1: crates/bench/src/bin/fig10_adaptation_domains.rs

crates/bench/src/bin/fig10_adaptation_domains.rs:
