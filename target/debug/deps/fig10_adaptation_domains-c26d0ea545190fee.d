/root/repo/target/debug/deps/fig10_adaptation_domains-c26d0ea545190fee.d: crates/bench/src/bin/fig10_adaptation_domains.rs

/root/repo/target/debug/deps/libfig10_adaptation_domains-c26d0ea545190fee.rmeta: crates/bench/src/bin/fig10_adaptation_domains.rs

crates/bench/src/bin/fig10_adaptation_domains.rs:
