/root/repo/target/debug/deps/paper_claims-26dae9cf86e10a4d.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-26dae9cf86e10a4d: tests/paper_claims.rs

tests/paper_claims.rs:
