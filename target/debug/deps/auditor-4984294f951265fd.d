/root/repo/target/debug/deps/auditor-4984294f951265fd.d: crates/bench/benches/auditor.rs

/root/repo/target/debug/deps/auditor-4984294f951265fd: crates/bench/benches/auditor.rs

crates/bench/benches/auditor.rs:
