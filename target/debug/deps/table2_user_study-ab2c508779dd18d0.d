/root/repo/target/debug/deps/table2_user_study-ab2c508779dd18d0.d: crates/bench/src/bin/table2_user_study.rs

/root/repo/target/debug/deps/libtable2_user_study-ab2c508779dd18d0.rmeta: crates/bench/src/bin/table2_user_study.rs

crates/bench/src/bin/table2_user_study.rs:
