/root/repo/target/debug/deps/ablation_oversampling-43b082e9101f6da4.d: crates/bench/src/bin/ablation_oversampling.rs

/root/repo/target/debug/deps/ablation_oversampling-43b082e9101f6da4: crates/bench/src/bin/ablation_oversampling.rs

crates/bench/src/bin/ablation_oversampling.rs:
