/root/repo/target/debug/deps/fig08_candidate_filter-aa8261560dd848a8.d: crates/bench/src/bin/fig08_candidate_filter.rs

/root/repo/target/debug/deps/libfig08_candidate_filter-aa8261560dd848a8.rmeta: crates/bench/src/bin/fig08_candidate_filter.rs

crates/bench/src/bin/fig08_candidate_filter.rs:
