/root/repo/target/debug/deps/fig15_optimistic-305870ffe516ddb2.d: crates/bench/src/bin/fig15_optimistic.rs

/root/repo/target/debug/deps/fig15_optimistic-305870ffe516ddb2: crates/bench/src/bin/fig15_optimistic.rs

crates/bench/src/bin/fig15_optimistic.rs:
