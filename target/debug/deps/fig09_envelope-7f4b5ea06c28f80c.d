/root/repo/target/debug/deps/fig09_envelope-7f4b5ea06c28f80c.d: crates/bench/src/bin/fig09_envelope.rs

/root/repo/target/debug/deps/libfig09_envelope-7f4b5ea06c28f80c.rmeta: crates/bench/src/bin/fig09_envelope.rs

crates/bench/src/bin/fig09_envelope.rs:
