/root/repo/target/debug/deps/auditor-aeacee50f4388538.d: crates/bench/benches/auditor.rs Cargo.toml

/root/repo/target/debug/deps/libauditor-aeacee50f4388538.rmeta: crates/bench/benches/auditor.rs Cargo.toml

crates/bench/benches/auditor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
