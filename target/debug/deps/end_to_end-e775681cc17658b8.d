/root/repo/target/debug/deps/end_to_end-e775681cc17658b8.d: tests/end_to_end.rs

/root/repo/target/debug/deps/libend_to_end-e775681cc17658b8.rmeta: tests/end_to_end.rs

tests/end_to_end.rs:
