/root/repo/target/debug/deps/codec_scratch-70454f60d0a0ae11.d: crates/bench/benches/codec_scratch.rs

/root/repo/target/debug/deps/codec_scratch-70454f60d0a0ae11: crates/bench/benches/codec_scratch.rs

crates/bench/benches/codec_scratch.rs:
