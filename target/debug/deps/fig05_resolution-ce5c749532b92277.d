/root/repo/target/debug/deps/fig05_resolution-ce5c749532b92277.d: crates/bench/src/bin/fig05_resolution.rs

/root/repo/target/debug/deps/fig05_resolution-ce5c749532b92277: crates/bench/src/bin/fig05_resolution.rs

crates/bench/src/bin/fig05_resolution.rs:
