/root/repo/target/debug/deps/smartvlc-3dfb7e1cfb331354.d: src/bin/smartvlc.rs

/root/repo/target/debug/deps/smartvlc-3dfb7e1cfb331354: src/bin/smartvlc.rs

src/bin/smartvlc.rs:
