/root/repo/target/debug/deps/fig19a_dynamic_throughput-547bda80fa120394.d: crates/bench/src/bin/fig19a_dynamic_throughput.rs

/root/repo/target/debug/deps/fig19a_dynamic_throughput-547bda80fa120394: crates/bench/src/bin/fig19a_dynamic_throughput.rs

crates/bench/src/bin/fig19a_dynamic_throughput.rs:
