/root/repo/target/debug/deps/combinat-08657ef419e0376a.d: crates/combinat/src/lib.rs crates/combinat/src/biguint.rs crates/combinat/src/binomial.rs crates/combinat/src/bits.rs crates/combinat/src/codeword.rs crates/combinat/src/tabulated.rs

/root/repo/target/debug/deps/libcombinat-08657ef419e0376a.rmeta: crates/combinat/src/lib.rs crates/combinat/src/biguint.rs crates/combinat/src/binomial.rs crates/combinat/src/bits.rs crates/combinat/src/codeword.rs crates/combinat/src/tabulated.rs

crates/combinat/src/lib.rs:
crates/combinat/src/biguint.rs:
crates/combinat/src/binomial.rs:
crates/combinat/src/bits.rs:
crates/combinat/src/codeword.rs:
crates/combinat/src/tabulated.rs:
