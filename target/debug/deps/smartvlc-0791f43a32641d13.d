/root/repo/target/debug/deps/smartvlc-0791f43a32641d13.d: src/lib.rs src/cli.rs

/root/repo/target/debug/deps/smartvlc-0791f43a32641d13: src/lib.rs src/cli.rs

src/lib.rs:
src/cli.rs:
