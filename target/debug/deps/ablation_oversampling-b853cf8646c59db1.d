/root/repo/target/debug/deps/ablation_oversampling-b853cf8646c59db1.d: crates/bench/src/bin/ablation_oversampling.rs

/root/repo/target/debug/deps/ablation_oversampling-b853cf8646c59db1: crates/bench/src/bin/ablation_oversampling.rs

crates/bench/src/bin/ablation_oversampling.rs:
