/root/repo/target/debug/deps/fig16_distance-e785427b23b35e30.d: crates/bench/src/bin/fig16_distance.rs Cargo.toml

/root/repo/target/debug/deps/libfig16_distance-e785427b23b35e30.rmeta: crates/bench/src/bin/fig16_distance.rs Cargo.toml

crates/bench/src/bin/fig16_distance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
