/root/repo/target/debug/deps/desim-f3a76c4e55ea6310.d: crates/desim/src/lib.rs crates/desim/src/process.rs crates/desim/src/rng.rs crates/desim/src/scheduler.rs crates/desim/src/time.rs

/root/repo/target/debug/deps/libdesim-f3a76c4e55ea6310.rmeta: crates/desim/src/lib.rs crates/desim/src/process.rs crates/desim/src/rng.rs crates/desim/src/scheduler.rs crates/desim/src/time.rs

crates/desim/src/lib.rs:
crates/desim/src/process.rs:
crates/desim/src/rng.rs:
crates/desim/src/scheduler.rs:
crates/desim/src/time.rs:
