/root/repo/target/debug/deps/fig09_envelope-b8bcb8001f3edee2.d: crates/bench/src/bin/fig09_envelope.rs Cargo.toml

/root/repo/target/debug/deps/libfig09_envelope-b8bcb8001f3edee2.rmeta: crates/bench/src/bin/fig09_envelope.rs Cargo.toml

crates/bench/src/bin/fig09_envelope.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
