/root/repo/target/debug/deps/flicker_safety-30762a1c60b3419e.d: tests/flicker_safety.rs

/root/repo/target/debug/deps/flicker_safety-30762a1c60b3419e: tests/flicker_safety.rs

tests/flicker_safety.rs:
