/root/repo/target/debug/deps/smartvlc-3d02c2a0fb5f9329.d: src/lib.rs src/cli.rs

/root/repo/target/debug/deps/smartvlc-3d02c2a0fb5f9329: src/lib.rs src/cli.rs

src/lib.rs:
src/cli.rs:
