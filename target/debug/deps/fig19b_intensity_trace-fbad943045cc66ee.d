/root/repo/target/debug/deps/fig19b_intensity_trace-fbad943045cc66ee.d: crates/bench/src/bin/fig19b_intensity_trace.rs

/root/repo/target/debug/deps/fig19b_intensity_trace-fbad943045cc66ee: crates/bench/src/bin/fig19b_intensity_trace.rs

crates/bench/src/bin/fig19b_intensity_trace.rs:
