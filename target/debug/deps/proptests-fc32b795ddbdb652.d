/root/repo/target/debug/deps/proptests-fc32b795ddbdb652.d: crates/combinat/tests/proptests.rs

/root/repo/target/debug/deps/libproptests-fc32b795ddbdb652.rmeta: crates/combinat/tests/proptests.rs

crates/combinat/tests/proptests.rs:
