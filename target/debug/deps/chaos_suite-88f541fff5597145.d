/root/repo/target/debug/deps/chaos_suite-88f541fff5597145.d: crates/bench/src/bin/chaos_suite.rs Cargo.toml

/root/repo/target/debug/deps/libchaos_suite-88f541fff5597145.rmeta: crates/bench/src/bin/chaos_suite.rs Cargo.toml

crates/bench/src/bin/chaos_suite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
