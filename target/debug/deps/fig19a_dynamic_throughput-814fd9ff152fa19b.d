/root/repo/target/debug/deps/fig19a_dynamic_throughput-814fd9ff152fa19b.d: crates/bench/src/bin/fig19a_dynamic_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libfig19a_dynamic_throughput-814fd9ff152fa19b.rmeta: crates/bench/src/bin/fig19a_dynamic_throughput.rs Cargo.toml

crates/bench/src/bin/fig19a_dynamic_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
