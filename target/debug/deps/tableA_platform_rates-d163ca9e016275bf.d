/root/repo/target/debug/deps/tableA_platform_rates-d163ca9e016275bf.d: crates/bench/src/bin/tableA_platform_rates.rs

/root/repo/target/debug/deps/tableA_platform_rates-d163ca9e016275bf: crates/bench/src/bin/tableA_platform_rates.rs

crates/bench/src/bin/tableA_platform_rates.rs:
