/root/repo/target/debug/deps/fig19c_adaptation_count-56c866ac590a7b71.d: crates/bench/src/bin/fig19c_adaptation_count.rs

/root/repo/target/debug/deps/libfig19c_adaptation_count-56c866ac590a7b71.rmeta: crates/bench/src/bin/fig19c_adaptation_count.rs

crates/bench/src/bin/fig19c_adaptation_count.rs:
