/root/repo/target/debug/deps/ablation_payload_size-a8835d59b9f035e2.d: crates/bench/src/bin/ablation_payload_size.rs

/root/repo/target/debug/deps/ablation_payload_size-a8835d59b9f035e2: crates/bench/src/bin/ablation_payload_size.rs

crates/bench/src/bin/ablation_payload_size.rs:
