/root/repo/target/debug/deps/table2_user_study-29c2aadce3f660ea.d: crates/bench/src/bin/table2_user_study.rs

/root/repo/target/debug/deps/table2_user_study-29c2aadce3f660ea: crates/bench/src/bin/table2_user_study.rs

crates/bench/src/bin/table2_user_study.rs:
