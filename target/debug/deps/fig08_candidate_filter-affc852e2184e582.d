/root/repo/target/debug/deps/fig08_candidate_filter-affc852e2184e582.d: crates/bench/src/bin/fig08_candidate_filter.rs

/root/repo/target/debug/deps/fig08_candidate_filter-affc852e2184e582: crates/bench/src/bin/fig08_candidate_filter.rs

crates/bench/src/bin/fig08_candidate_filter.rs:
