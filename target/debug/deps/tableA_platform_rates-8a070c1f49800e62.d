/root/repo/target/debug/deps/tableA_platform_rates-8a070c1f49800e62.d: crates/bench/src/bin/tableA_platform_rates.rs

/root/repo/target/debug/deps/libtableA_platform_rates-8a070c1f49800e62.rmeta: crates/bench/src/bin/tableA_platform_rates.rs

crates/bench/src/bin/tableA_platform_rates.rs:
