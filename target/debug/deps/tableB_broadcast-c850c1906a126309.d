/root/repo/target/debug/deps/tableB_broadcast-c850c1906a126309.d: crates/bench/src/bin/tableB_broadcast.rs

/root/repo/target/debug/deps/libtableB_broadcast-c850c1906a126309.rmeta: crates/bench/src/bin/tableB_broadcast.rs

crates/bench/src/bin/tableB_broadcast.rs:
