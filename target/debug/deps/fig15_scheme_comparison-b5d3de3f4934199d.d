/root/repo/target/debug/deps/fig15_scheme_comparison-b5d3de3f4934199d.d: crates/bench/src/bin/fig15_scheme_comparison.rs

/root/repo/target/debug/deps/libfig15_scheme_comparison-b5d3de3f4934199d.rmeta: crates/bench/src/bin/fig15_scheme_comparison.rs

crates/bench/src/bin/fig15_scheme_comparison.rs:
