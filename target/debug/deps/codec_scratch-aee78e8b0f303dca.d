/root/repo/target/debug/deps/codec_scratch-aee78e8b0f303dca.d: crates/bench/benches/codec_scratch.rs Cargo.toml

/root/repo/target/debug/deps/libcodec_scratch-aee78e8b0f303dca.rmeta: crates/bench/benches/codec_scratch.rs Cargo.toml

crates/bench/benches/codec_scratch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
