/root/repo/target/debug/deps/vlc_hw-eec52e240ace0fe6.d: crates/vlc-hw/src/lib.rs crates/vlc-hw/src/board.rs crates/vlc-hw/src/gpio.rs crates/vlc-hw/src/pru.rs crates/vlc-hw/src/sampler.rs crates/vlc-hw/src/shmem.rs crates/vlc-hw/src/wifi.rs Cargo.toml

/root/repo/target/debug/deps/libvlc_hw-eec52e240ace0fe6.rmeta: crates/vlc-hw/src/lib.rs crates/vlc-hw/src/board.rs crates/vlc-hw/src/gpio.rs crates/vlc-hw/src/pru.rs crates/vlc-hw/src/sampler.rs crates/vlc-hw/src/shmem.rs crates/vlc-hw/src/wifi.rs Cargo.toml

crates/vlc-hw/src/lib.rs:
crates/vlc-hw/src/board.rs:
crates/vlc-hw/src/gpio.rs:
crates/vlc-hw/src/pru.rs:
crates/vlc-hw/src/sampler.rs:
crates/vlc-hw/src/shmem.rs:
crates/vlc-hw/src/wifi.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
