/root/repo/target/debug/deps/smartvlc_sim-27aad415081c6fc4.d: crates/smartvlc-sim/src/lib.rs crates/smartvlc-sim/src/broadcast.rs crates/smartvlc-sim/src/chaos.rs crates/smartvlc-sim/src/daylong.rs crates/smartvlc-sim/src/dynamic_run.rs crates/smartvlc-sim/src/energy.rs crates/smartvlc-sim/src/perception.rs crates/smartvlc-sim/src/report.rs crates/smartvlc-sim/src/runner.rs crates/smartvlc-sim/src/static_run.rs crates/smartvlc-sim/src/stats_util.rs Cargo.toml

/root/repo/target/debug/deps/libsmartvlc_sim-27aad415081c6fc4.rmeta: crates/smartvlc-sim/src/lib.rs crates/smartvlc-sim/src/broadcast.rs crates/smartvlc-sim/src/chaos.rs crates/smartvlc-sim/src/daylong.rs crates/smartvlc-sim/src/dynamic_run.rs crates/smartvlc-sim/src/energy.rs crates/smartvlc-sim/src/perception.rs crates/smartvlc-sim/src/report.rs crates/smartvlc-sim/src/runner.rs crates/smartvlc-sim/src/static_run.rs crates/smartvlc-sim/src/stats_util.rs Cargo.toml

crates/smartvlc-sim/src/lib.rs:
crates/smartvlc-sim/src/broadcast.rs:
crates/smartvlc-sim/src/chaos.rs:
crates/smartvlc-sim/src/daylong.rs:
crates/smartvlc-sim/src/dynamic_run.rs:
crates/smartvlc-sim/src/energy.rs:
crates/smartvlc-sim/src/perception.rs:
crates/smartvlc-sim/src/report.rs:
crates/smartvlc-sim/src/runner.rs:
crates/smartvlc-sim/src/static_run.rs:
crates/smartvlc-sim/src/stats_util.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
