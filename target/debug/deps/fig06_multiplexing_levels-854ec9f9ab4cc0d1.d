/root/repo/target/debug/deps/fig06_multiplexing_levels-854ec9f9ab4cc0d1.d: crates/bench/src/bin/fig06_multiplexing_levels.rs

/root/repo/target/debug/deps/libfig06_multiplexing_levels-854ec9f9ab4cc0d1.rmeta: crates/bench/src/bin/fig06_multiplexing_levels.rs

crates/bench/src/bin/fig06_multiplexing_levels.rs:
