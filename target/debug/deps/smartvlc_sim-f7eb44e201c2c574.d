/root/repo/target/debug/deps/smartvlc_sim-f7eb44e201c2c574.d: crates/smartvlc-sim/src/lib.rs crates/smartvlc-sim/src/broadcast.rs crates/smartvlc-sim/src/chaos.rs crates/smartvlc-sim/src/daylong.rs crates/smartvlc-sim/src/dynamic_run.rs crates/smartvlc-sim/src/energy.rs crates/smartvlc-sim/src/perception.rs crates/smartvlc-sim/src/report.rs crates/smartvlc-sim/src/runner.rs crates/smartvlc-sim/src/static_run.rs crates/smartvlc-sim/src/stats_util.rs

/root/repo/target/debug/deps/libsmartvlc_sim-f7eb44e201c2c574.rlib: crates/smartvlc-sim/src/lib.rs crates/smartvlc-sim/src/broadcast.rs crates/smartvlc-sim/src/chaos.rs crates/smartvlc-sim/src/daylong.rs crates/smartvlc-sim/src/dynamic_run.rs crates/smartvlc-sim/src/energy.rs crates/smartvlc-sim/src/perception.rs crates/smartvlc-sim/src/report.rs crates/smartvlc-sim/src/runner.rs crates/smartvlc-sim/src/static_run.rs crates/smartvlc-sim/src/stats_util.rs

/root/repo/target/debug/deps/libsmartvlc_sim-f7eb44e201c2c574.rmeta: crates/smartvlc-sim/src/lib.rs crates/smartvlc-sim/src/broadcast.rs crates/smartvlc-sim/src/chaos.rs crates/smartvlc-sim/src/daylong.rs crates/smartvlc-sim/src/dynamic_run.rs crates/smartvlc-sim/src/energy.rs crates/smartvlc-sim/src/perception.rs crates/smartvlc-sim/src/report.rs crates/smartvlc-sim/src/runner.rs crates/smartvlc-sim/src/static_run.rs crates/smartvlc-sim/src/stats_util.rs

crates/smartvlc-sim/src/lib.rs:
crates/smartvlc-sim/src/broadcast.rs:
crates/smartvlc-sim/src/chaos.rs:
crates/smartvlc-sim/src/daylong.rs:
crates/smartvlc-sim/src/dynamic_run.rs:
crates/smartvlc-sim/src/energy.rs:
crates/smartvlc-sim/src/perception.rs:
crates/smartvlc-sim/src/report.rs:
crates/smartvlc-sim/src/runner.rs:
crates/smartvlc-sim/src/static_run.rs:
crates/smartvlc-sim/src/stats_util.rs:
