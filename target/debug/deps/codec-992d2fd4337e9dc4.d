/root/repo/target/debug/deps/codec-992d2fd4337e9dc4.d: crates/bench/benches/codec.rs Cargo.toml

/root/repo/target/debug/deps/libcodec-992d2fd4337e9dc4.rmeta: crates/bench/benches/codec.rs Cargo.toml

crates/bench/benches/codec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
