/root/repo/target/debug/deps/ablation_codec_memory-ea26eae86fe35805.d: crates/bench/src/bin/ablation_codec_memory.rs

/root/repo/target/debug/deps/libablation_codec_memory-ea26eae86fe35805.rmeta: crates/bench/src/bin/ablation_codec_memory.rs

crates/bench/src/bin/ablation_codec_memory.rs:
