/root/repo/target/debug/deps/paper_claims-de06e651b29aba5d.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-de06e651b29aba5d: tests/paper_claims.rs

tests/paper_claims.rs:
