/root/repo/target/debug/deps/bench_runner-2955257994d557dc.d: crates/bench/src/bin/bench_runner.rs

/root/repo/target/debug/deps/bench_runner-2955257994d557dc: crates/bench/src/bin/bench_runner.rs

crates/bench/src/bin/bench_runner.rs:
