/root/repo/target/debug/deps/fig19c_adaptation_count-940948c0f093f89b.d: crates/bench/src/bin/fig19c_adaptation_count.rs Cargo.toml

/root/repo/target/debug/deps/libfig19c_adaptation_count-940948c0f093f89b.rmeta: crates/bench/src/bin/fig19c_adaptation_count.rs Cargo.toml

crates/bench/src/bin/fig19c_adaptation_count.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
