/root/repo/target/debug/deps/paper_claims-7e9f66f04aa5ae93.d: tests/paper_claims.rs

/root/repo/target/debug/deps/libpaper_claims-7e9f66f04aa5ae93.rmeta: tests/paper_claims.rs

tests/paper_claims.rs:
