/root/repo/target/debug/deps/tableB_broadcast-d207c057fa6a687e.d: crates/bench/src/bin/tableB_broadcast.rs

/root/repo/target/debug/deps/libtableB_broadcast-d207c057fa6a687e.rmeta: crates/bench/src/bin/tableB_broadcast.rs

crates/bench/src/bin/tableB_broadcast.rs:
