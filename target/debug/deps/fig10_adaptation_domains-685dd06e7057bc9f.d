/root/repo/target/debug/deps/fig10_adaptation_domains-685dd06e7057bc9f.d: crates/bench/src/bin/fig10_adaptation_domains.rs

/root/repo/target/debug/deps/libfig10_adaptation_domains-685dd06e7057bc9f.rmeta: crates/bench/src/bin/fig10_adaptation_domains.rs

crates/bench/src/bin/fig10_adaptation_domains.rs:
