/root/repo/target/debug/deps/fig16_distance-ba26f2eb976ef823.d: crates/bench/src/bin/fig16_distance.rs

/root/repo/target/debug/deps/libfig16_distance-ba26f2eb976ef823.rmeta: crates/bench/src/bin/fig16_distance.rs

crates/bench/src/bin/fig16_distance.rs:
