/root/repo/target/debug/deps/smartvlc_link-ea2a255c0b4fc5b9.d: crates/smartvlc-link/src/lib.rs crates/smartvlc-link/src/error.rs crates/smartvlc-link/src/link.rs crates/smartvlc-link/src/mac.rs crates/smartvlc-link/src/rx.rs crates/smartvlc-link/src/stats.rs crates/smartvlc-link/src/sync.rs crates/smartvlc-link/src/tx.rs crates/smartvlc-link/src/uplink.rs crates/smartvlc-link/src/uplink_vlc.rs

/root/repo/target/debug/deps/libsmartvlc_link-ea2a255c0b4fc5b9.rlib: crates/smartvlc-link/src/lib.rs crates/smartvlc-link/src/error.rs crates/smartvlc-link/src/link.rs crates/smartvlc-link/src/mac.rs crates/smartvlc-link/src/rx.rs crates/smartvlc-link/src/stats.rs crates/smartvlc-link/src/sync.rs crates/smartvlc-link/src/tx.rs crates/smartvlc-link/src/uplink.rs crates/smartvlc-link/src/uplink_vlc.rs

/root/repo/target/debug/deps/libsmartvlc_link-ea2a255c0b4fc5b9.rmeta: crates/smartvlc-link/src/lib.rs crates/smartvlc-link/src/error.rs crates/smartvlc-link/src/link.rs crates/smartvlc-link/src/mac.rs crates/smartvlc-link/src/rx.rs crates/smartvlc-link/src/stats.rs crates/smartvlc-link/src/sync.rs crates/smartvlc-link/src/tx.rs crates/smartvlc-link/src/uplink.rs crates/smartvlc-link/src/uplink_vlc.rs

crates/smartvlc-link/src/lib.rs:
crates/smartvlc-link/src/error.rs:
crates/smartvlc-link/src/link.rs:
crates/smartvlc-link/src/mac.rs:
crates/smartvlc-link/src/rx.rs:
crates/smartvlc-link/src/stats.rs:
crates/smartvlc-link/src/sync.rs:
crates/smartvlc-link/src/tx.rs:
crates/smartvlc-link/src/uplink.rs:
crates/smartvlc-link/src/uplink_vlc.rs:
