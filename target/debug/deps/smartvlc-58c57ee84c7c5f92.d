/root/repo/target/debug/deps/smartvlc-58c57ee84c7c5f92.d: src/lib.rs src/cli.rs

/root/repo/target/debug/deps/libsmartvlc-58c57ee84c7c5f92.rlib: src/lib.rs src/cli.rs

/root/repo/target/debug/deps/libsmartvlc-58c57ee84c7c5f92.rmeta: src/lib.rs src/cli.rs

src/lib.rs:
src/cli.rs:
