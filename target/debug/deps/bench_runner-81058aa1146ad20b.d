/root/repo/target/debug/deps/bench_runner-81058aa1146ad20b.d: crates/bench/src/bin/bench_runner.rs

/root/repo/target/debug/deps/bench_runner-81058aa1146ad20b: crates/bench/src/bin/bench_runner.rs

crates/bench/src/bin/bench_runner.rs:
