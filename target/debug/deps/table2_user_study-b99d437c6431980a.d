/root/repo/target/debug/deps/table2_user_study-b99d437c6431980a.d: crates/bench/src/bin/table2_user_study.rs

/root/repo/target/debug/deps/table2_user_study-b99d437c6431980a: crates/bench/src/bin/table2_user_study.rs

crates/bench/src/bin/table2_user_study.rs:
