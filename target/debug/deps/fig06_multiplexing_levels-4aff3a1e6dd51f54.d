/root/repo/target/debug/deps/fig06_multiplexing_levels-4aff3a1e6dd51f54.d: crates/bench/src/bin/fig06_multiplexing_levels.rs

/root/repo/target/debug/deps/fig06_multiplexing_levels-4aff3a1e6dd51f54: crates/bench/src/bin/fig06_multiplexing_levels.rs

crates/bench/src/bin/fig06_multiplexing_levels.rs:
