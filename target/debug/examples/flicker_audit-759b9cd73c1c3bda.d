/root/repo/target/debug/examples/flicker_audit-759b9cd73c1c3bda.d: examples/flicker_audit.rs Cargo.toml

/root/repo/target/debug/examples/libflicker_audit-759b9cd73c1c3bda.rmeta: examples/flicker_audit.rs Cargo.toml

examples/flicker_audit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
