/root/repo/target/debug/examples/office_day-f36adc2a08961691.d: examples/office_day.rs

/root/repo/target/debug/examples/liboffice_day-f36adc2a08961691.rmeta: examples/office_day.rs

examples/office_day.rs:
