/root/repo/target/debug/examples/smart_office-ad506fc26fd2462c.d: examples/smart_office.rs

/root/repo/target/debug/examples/smart_office-ad506fc26fd2462c: examples/smart_office.rs

examples/smart_office.rs:
