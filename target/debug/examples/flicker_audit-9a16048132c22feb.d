/root/repo/target/debug/examples/flicker_audit-9a16048132c22feb.d: examples/flicker_audit.rs

/root/repo/target/debug/examples/flicker_audit-9a16048132c22feb: examples/flicker_audit.rs

examples/flicker_audit.rs:
