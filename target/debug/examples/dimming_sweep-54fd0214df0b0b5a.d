/root/repo/target/debug/examples/dimming_sweep-54fd0214df0b0b5a.d: examples/dimming_sweep.rs Cargo.toml

/root/repo/target/debug/examples/libdimming_sweep-54fd0214df0b0b5a.rmeta: examples/dimming_sweep.rs Cargo.toml

examples/dimming_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
