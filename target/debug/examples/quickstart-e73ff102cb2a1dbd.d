/root/repo/target/debug/examples/quickstart-e73ff102cb2a1dbd.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-e73ff102cb2a1dbd: examples/quickstart.rs

examples/quickstart.rs:
