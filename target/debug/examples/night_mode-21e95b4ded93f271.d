/root/repo/target/debug/examples/night_mode-21e95b4ded93f271.d: examples/night_mode.rs Cargo.toml

/root/repo/target/debug/examples/libnight_mode-21e95b4ded93f271.rmeta: examples/night_mode.rs Cargo.toml

examples/night_mode.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
