/root/repo/target/debug/examples/office_day-361c3cfb034f1c73.d: examples/office_day.rs Cargo.toml

/root/repo/target/debug/examples/liboffice_day-361c3cfb034f1c73.rmeta: examples/office_day.rs Cargo.toml

examples/office_day.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
