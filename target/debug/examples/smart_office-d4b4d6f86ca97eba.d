/root/repo/target/debug/examples/smart_office-d4b4d6f86ca97eba.d: examples/smart_office.rs

/root/repo/target/debug/examples/libsmart_office-d4b4d6f86ca97eba.rmeta: examples/smart_office.rs

examples/smart_office.rs:
