/root/repo/target/debug/examples/night_mode-da82e851366bb871.d: examples/night_mode.rs

/root/repo/target/debug/examples/night_mode-da82e851366bb871: examples/night_mode.rs

examples/night_mode.rs:
