/root/repo/target/debug/examples/night_mode-46f2e97fa3227d1a.d: examples/night_mode.rs

/root/repo/target/debug/examples/night_mode-46f2e97fa3227d1a: examples/night_mode.rs

examples/night_mode.rs:
