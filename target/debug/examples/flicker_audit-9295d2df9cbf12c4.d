/root/repo/target/debug/examples/flicker_audit-9295d2df9cbf12c4.d: examples/flicker_audit.rs

/root/repo/target/debug/examples/libflicker_audit-9295d2df9cbf12c4.rmeta: examples/flicker_audit.rs

examples/flicker_audit.rs:
