/root/repo/target/debug/examples/dimming_sweep-684471999776596c.d: examples/dimming_sweep.rs

/root/repo/target/debug/examples/dimming_sweep-684471999776596c: examples/dimming_sweep.rs

examples/dimming_sweep.rs:
