/root/repo/target/debug/examples/dimming_sweep-d449548f95e33158.d: examples/dimming_sweep.rs

/root/repo/target/debug/examples/libdimming_sweep-d449548f95e33158.rmeta: examples/dimming_sweep.rs

examples/dimming_sweep.rs:
