/root/repo/target/debug/examples/file_transfer-bf9fb6353c6d881d.d: examples/file_transfer.rs

/root/repo/target/debug/examples/file_transfer-bf9fb6353c6d881d: examples/file_transfer.rs

examples/file_transfer.rs:
