/root/repo/target/debug/examples/smart_office-d8785042415716a0.d: examples/smart_office.rs Cargo.toml

/root/repo/target/debug/examples/libsmart_office-d8785042415716a0.rmeta: examples/smart_office.rs Cargo.toml

examples/smart_office.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
