/root/repo/target/debug/examples/office_day-44bd12d51228d281.d: examples/office_day.rs

/root/repo/target/debug/examples/office_day-44bd12d51228d281: examples/office_day.rs

examples/office_day.rs:
