/root/repo/target/debug/examples/dimming_sweep-46f270ab34d88f75.d: examples/dimming_sweep.rs

/root/repo/target/debug/examples/dimming_sweep-46f270ab34d88f75: examples/dimming_sweep.rs

examples/dimming_sweep.rs:
