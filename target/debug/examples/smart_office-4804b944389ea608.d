/root/repo/target/debug/examples/smart_office-4804b944389ea608.d: examples/smart_office.rs

/root/repo/target/debug/examples/smart_office-4804b944389ea608: examples/smart_office.rs

examples/smart_office.rs:
