/root/repo/target/debug/examples/file_transfer-eb2be13316df65fb.d: examples/file_transfer.rs

/root/repo/target/debug/examples/libfile_transfer-eb2be13316df65fb.rmeta: examples/file_transfer.rs

examples/file_transfer.rs:
