/root/repo/target/debug/examples/quickstart-ef72a4cc061d6d33.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-ef72a4cc061d6d33.rmeta: examples/quickstart.rs

examples/quickstart.rs:
