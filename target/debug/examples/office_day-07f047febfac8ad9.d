/root/repo/target/debug/examples/office_day-07f047febfac8ad9.d: examples/office_day.rs

/root/repo/target/debug/examples/office_day-07f047febfac8ad9: examples/office_day.rs

examples/office_day.rs:
