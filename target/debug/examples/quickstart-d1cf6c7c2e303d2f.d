/root/repo/target/debug/examples/quickstart-d1cf6c7c2e303d2f.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-d1cf6c7c2e303d2f: examples/quickstart.rs

examples/quickstart.rs:
