/root/repo/target/debug/examples/file_transfer-cacd085e1d97382a.d: examples/file_transfer.rs Cargo.toml

/root/repo/target/debug/examples/libfile_transfer-cacd085e1d97382a.rmeta: examples/file_transfer.rs Cargo.toml

examples/file_transfer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
