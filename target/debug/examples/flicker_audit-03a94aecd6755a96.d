/root/repo/target/debug/examples/flicker_audit-03a94aecd6755a96.d: examples/flicker_audit.rs

/root/repo/target/debug/examples/flicker_audit-03a94aecd6755a96: examples/flicker_audit.rs

examples/flicker_audit.rs:
