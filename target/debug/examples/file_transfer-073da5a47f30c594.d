/root/repo/target/debug/examples/file_transfer-073da5a47f30c594.d: examples/file_transfer.rs

/root/repo/target/debug/examples/file_transfer-073da5a47f30c594: examples/file_transfer.rs

examples/file_transfer.rs:
