/root/repo/target/debug/examples/night_mode-32db4135f255eee8.d: examples/night_mode.rs

/root/repo/target/debug/examples/libnight_mode-32db4135f255eee8.rmeta: examples/night_mode.rs

examples/night_mode.rs:
