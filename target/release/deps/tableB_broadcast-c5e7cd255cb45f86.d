/root/repo/target/release/deps/tableB_broadcast-c5e7cd255cb45f86.d: crates/bench/src/bin/tableB_broadcast.rs

/root/repo/target/release/deps/tableB_broadcast-c5e7cd255cb45f86: crates/bench/src/bin/tableB_broadcast.rs

crates/bench/src/bin/tableB_broadcast.rs:
