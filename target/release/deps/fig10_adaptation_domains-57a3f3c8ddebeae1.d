/root/repo/target/release/deps/fig10_adaptation_domains-57a3f3c8ddebeae1.d: crates/bench/src/bin/fig10_adaptation_domains.rs

/root/repo/target/release/deps/fig10_adaptation_domains-57a3f3c8ddebeae1: crates/bench/src/bin/fig10_adaptation_domains.rs

crates/bench/src/bin/fig10_adaptation_domains.rs:
