/root/repo/target/release/deps/fig09_envelope-432094ef5c3eed4f.d: crates/bench/src/bin/fig09_envelope.rs

/root/repo/target/release/deps/fig09_envelope-432094ef5c3eed4f: crates/bench/src/bin/fig09_envelope.rs

crates/bench/src/bin/fig09_envelope.rs:
