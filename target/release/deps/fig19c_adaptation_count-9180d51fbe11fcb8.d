/root/repo/target/release/deps/fig19c_adaptation_count-9180d51fbe11fcb8.d: crates/bench/src/bin/fig19c_adaptation_count.rs

/root/repo/target/release/deps/fig19c_adaptation_count-9180d51fbe11fcb8: crates/bench/src/bin/fig19c_adaptation_count.rs

crates/bench/src/bin/fig19c_adaptation_count.rs:
