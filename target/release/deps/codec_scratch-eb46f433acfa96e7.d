/root/repo/target/release/deps/codec_scratch-eb46f433acfa96e7.d: crates/bench/benches/codec_scratch.rs

/root/repo/target/release/deps/codec_scratch-eb46f433acfa96e7: crates/bench/benches/codec_scratch.rs

crates/bench/benches/codec_scratch.rs:
