/root/repo/target/release/deps/desim-789f2bbc2b347b8a.d: crates/desim/src/lib.rs crates/desim/src/process.rs crates/desim/src/rng.rs crates/desim/src/scheduler.rs crates/desim/src/time.rs

/root/repo/target/release/deps/libdesim-789f2bbc2b347b8a.rlib: crates/desim/src/lib.rs crates/desim/src/process.rs crates/desim/src/rng.rs crates/desim/src/scheduler.rs crates/desim/src/time.rs

/root/repo/target/release/deps/libdesim-789f2bbc2b347b8a.rmeta: crates/desim/src/lib.rs crates/desim/src/process.rs crates/desim/src/rng.rs crates/desim/src/scheduler.rs crates/desim/src/time.rs

crates/desim/src/lib.rs:
crates/desim/src/process.rs:
crates/desim/src/rng.rs:
crates/desim/src/scheduler.rs:
crates/desim/src/time.rs:
