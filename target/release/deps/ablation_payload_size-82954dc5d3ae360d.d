/root/repo/target/release/deps/ablation_payload_size-82954dc5d3ae360d.d: crates/bench/src/bin/ablation_payload_size.rs

/root/repo/target/release/deps/ablation_payload_size-82954dc5d3ae360d: crates/bench/src/bin/ablation_payload_size.rs

crates/bench/src/bin/ablation_payload_size.rs:
