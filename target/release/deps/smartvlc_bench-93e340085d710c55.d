/root/repo/target/release/deps/smartvlc_bench-93e340085d710c55.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libsmartvlc_bench-93e340085d710c55.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libsmartvlc_bench-93e340085d710c55.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
