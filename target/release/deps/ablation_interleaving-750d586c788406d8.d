/root/repo/target/release/deps/ablation_interleaving-750d586c788406d8.d: crates/bench/src/bin/ablation_interleaving.rs

/root/repo/target/release/deps/ablation_interleaving-750d586c788406d8: crates/bench/src/bin/ablation_interleaving.rs

crates/bench/src/bin/ablation_interleaving.rs:
