/root/repo/target/release/deps/fig06_multiplexing_levels-06c0444ef21439e6.d: crates/bench/src/bin/fig06_multiplexing_levels.rs

/root/repo/target/release/deps/fig06_multiplexing_levels-06c0444ef21439e6: crates/bench/src/bin/fig06_multiplexing_levels.rs

crates/bench/src/bin/fig06_multiplexing_levels.rs:
