/root/repo/target/release/deps/fig04_ser_vs_dimming-297886cb1eda057f.d: crates/bench/src/bin/fig04_ser_vs_dimming.rs

/root/repo/target/release/deps/fig04_ser_vs_dimming-297886cb1eda057f: crates/bench/src/bin/fig04_ser_vs_dimming.rs

crates/bench/src/bin/fig04_ser_vs_dimming.rs:
