/root/repo/target/release/deps/smartvlc-b22819016a7ef52c.d: src/lib.rs src/cli.rs

/root/repo/target/release/deps/libsmartvlc-b22819016a7ef52c.rlib: src/lib.rs src/cli.rs

/root/repo/target/release/deps/libsmartvlc-b22819016a7ef52c.rmeta: src/lib.rs src/cli.rs

src/lib.rs:
src/cli.rs:
