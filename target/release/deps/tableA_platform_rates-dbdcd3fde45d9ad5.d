/root/repo/target/release/deps/tableA_platform_rates-dbdcd3fde45d9ad5.d: crates/bench/src/bin/tableA_platform_rates.rs

/root/repo/target/release/deps/tableA_platform_rates-dbdcd3fde45d9ad5: crates/bench/src/bin/tableA_platform_rates.rs

crates/bench/src/bin/tableA_platform_rates.rs:
