/root/repo/target/release/deps/combinat-2052d0e4e842bbd7.d: crates/combinat/src/lib.rs crates/combinat/src/biguint.rs crates/combinat/src/binomial.rs crates/combinat/src/bits.rs crates/combinat/src/codeword.rs crates/combinat/src/tabulated.rs

/root/repo/target/release/deps/libcombinat-2052d0e4e842bbd7.rlib: crates/combinat/src/lib.rs crates/combinat/src/biguint.rs crates/combinat/src/binomial.rs crates/combinat/src/bits.rs crates/combinat/src/codeword.rs crates/combinat/src/tabulated.rs

/root/repo/target/release/deps/libcombinat-2052d0e4e842bbd7.rmeta: crates/combinat/src/lib.rs crates/combinat/src/biguint.rs crates/combinat/src/binomial.rs crates/combinat/src/bits.rs crates/combinat/src/codeword.rs crates/combinat/src/tabulated.rs

crates/combinat/src/lib.rs:
crates/combinat/src/biguint.rs:
crates/combinat/src/binomial.rs:
crates/combinat/src/bits.rs:
crates/combinat/src/codeword.rs:
crates/combinat/src/tabulated.rs:
