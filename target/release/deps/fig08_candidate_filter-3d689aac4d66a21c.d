/root/repo/target/release/deps/fig08_candidate_filter-3d689aac4d66a21c.d: crates/bench/src/bin/fig08_candidate_filter.rs

/root/repo/target/release/deps/fig08_candidate_filter-3d689aac4d66a21c: crates/bench/src/bin/fig08_candidate_filter.rs

crates/bench/src/bin/fig08_candidate_filter.rs:
