/root/repo/target/release/deps/fig15_optimistic-ab4f9d1cb80ed4f6.d: crates/bench/src/bin/fig15_optimistic.rs

/root/repo/target/release/deps/fig15_optimistic-ab4f9d1cb80ed4f6: crates/bench/src/bin/fig15_optimistic.rs

crates/bench/src/bin/fig15_optimistic.rs:
