/root/repo/target/release/deps/fig16_distance-b8bfe0b62ec66357.d: crates/bench/src/bin/fig16_distance.rs

/root/repo/target/release/deps/fig16_distance-b8bfe0b62ec66357: crates/bench/src/bin/fig16_distance.rs

crates/bench/src/bin/fig16_distance.rs:
