/root/repo/target/release/deps/smartvlc-62a45394a5c464a5.d: src/lib.rs src/cli.rs

/root/repo/target/release/deps/libsmartvlc-62a45394a5c464a5.rlib: src/lib.rs src/cli.rs

/root/repo/target/release/deps/libsmartvlc-62a45394a5c464a5.rmeta: src/lib.rs src/cli.rs

src/lib.rs:
src/cli.rs:
