/root/repo/target/release/deps/fig19a_dynamic_throughput-db4c6ec0f10d2772.d: crates/bench/src/bin/fig19a_dynamic_throughput.rs

/root/repo/target/release/deps/fig19a_dynamic_throughput-db4c6ec0f10d2772: crates/bench/src/bin/fig19a_dynamic_throughput.rs

crates/bench/src/bin/fig19a_dynamic_throughput.rs:
