/root/repo/target/release/deps/planner_shared_table-74374398740432a6.d: crates/bench/benches/planner_shared_table.rs

/root/repo/target/release/deps/planner_shared_table-74374398740432a6: crates/bench/benches/planner_shared_table.rs

crates/bench/benches/planner_shared_table.rs:
