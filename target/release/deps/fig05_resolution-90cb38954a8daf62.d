/root/repo/target/release/deps/fig05_resolution-90cb38954a8daf62.d: crates/bench/src/bin/fig05_resolution.rs

/root/repo/target/release/deps/fig05_resolution-90cb38954a8daf62: crates/bench/src/bin/fig05_resolution.rs

crates/bench/src/bin/fig05_resolution.rs:
