/root/repo/target/release/deps/table2_user_study-8f0f8deada1d7b00.d: crates/bench/src/bin/table2_user_study.rs

/root/repo/target/release/deps/table2_user_study-8f0f8deada1d7b00: crates/bench/src/bin/table2_user_study.rs

crates/bench/src/bin/table2_user_study.rs:
