/root/repo/target/release/deps/ablation_codec_memory-184012eb38c7da56.d: crates/bench/src/bin/ablation_codec_memory.rs

/root/repo/target/release/deps/ablation_codec_memory-184012eb38c7da56: crates/bench/src/bin/ablation_codec_memory.rs

crates/bench/src/bin/ablation_codec_memory.rs:
