/root/repo/target/release/deps/fig19b_intensity_trace-fbfb7be4c2e6cab1.d: crates/bench/src/bin/fig19b_intensity_trace.rs

/root/repo/target/release/deps/fig19b_intensity_trace-fbfb7be4c2e6cab1: crates/bench/src/bin/fig19b_intensity_trace.rs

crates/bench/src/bin/fig19b_intensity_trace.rs:
