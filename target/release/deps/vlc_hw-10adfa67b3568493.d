/root/repo/target/release/deps/vlc_hw-10adfa67b3568493.d: crates/vlc-hw/src/lib.rs crates/vlc-hw/src/board.rs crates/vlc-hw/src/gpio.rs crates/vlc-hw/src/pru.rs crates/vlc-hw/src/sampler.rs crates/vlc-hw/src/shmem.rs crates/vlc-hw/src/wifi.rs

/root/repo/target/release/deps/libvlc_hw-10adfa67b3568493.rlib: crates/vlc-hw/src/lib.rs crates/vlc-hw/src/board.rs crates/vlc-hw/src/gpio.rs crates/vlc-hw/src/pru.rs crates/vlc-hw/src/sampler.rs crates/vlc-hw/src/shmem.rs crates/vlc-hw/src/wifi.rs

/root/repo/target/release/deps/libvlc_hw-10adfa67b3568493.rmeta: crates/vlc-hw/src/lib.rs crates/vlc-hw/src/board.rs crates/vlc-hw/src/gpio.rs crates/vlc-hw/src/pru.rs crates/vlc-hw/src/sampler.rs crates/vlc-hw/src/shmem.rs crates/vlc-hw/src/wifi.rs

crates/vlc-hw/src/lib.rs:
crates/vlc-hw/src/board.rs:
crates/vlc-hw/src/gpio.rs:
crates/vlc-hw/src/pru.rs:
crates/vlc-hw/src/sampler.rs:
crates/vlc-hw/src/shmem.rs:
crates/vlc-hw/src/wifi.rs:
