/root/repo/target/release/deps/fig17_incidence-fbec8499bfd694e8.d: crates/bench/src/bin/fig17_incidence.rs

/root/repo/target/release/deps/fig17_incidence-fbec8499bfd694e8: crates/bench/src/bin/fig17_incidence.rs

crates/bench/src/bin/fig17_incidence.rs:
