/root/repo/target/release/deps/fig15_scheme_comparison-3c9bd932531a2f36.d: crates/bench/src/bin/fig15_scheme_comparison.rs

/root/repo/target/release/deps/fig15_scheme_comparison-3c9bd932531a2f36: crates/bench/src/bin/fig15_scheme_comparison.rs

crates/bench/src/bin/fig15_scheme_comparison.rs:
