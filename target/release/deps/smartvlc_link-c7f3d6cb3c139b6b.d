/root/repo/target/release/deps/smartvlc_link-c7f3d6cb3c139b6b.d: crates/smartvlc-link/src/lib.rs crates/smartvlc-link/src/error.rs crates/smartvlc-link/src/link.rs crates/smartvlc-link/src/mac.rs crates/smartvlc-link/src/rx.rs crates/smartvlc-link/src/stats.rs crates/smartvlc-link/src/sync.rs crates/smartvlc-link/src/tx.rs crates/smartvlc-link/src/uplink.rs crates/smartvlc-link/src/uplink_vlc.rs

/root/repo/target/release/deps/libsmartvlc_link-c7f3d6cb3c139b6b.rlib: crates/smartvlc-link/src/lib.rs crates/smartvlc-link/src/error.rs crates/smartvlc-link/src/link.rs crates/smartvlc-link/src/mac.rs crates/smartvlc-link/src/rx.rs crates/smartvlc-link/src/stats.rs crates/smartvlc-link/src/sync.rs crates/smartvlc-link/src/tx.rs crates/smartvlc-link/src/uplink.rs crates/smartvlc-link/src/uplink_vlc.rs

/root/repo/target/release/deps/libsmartvlc_link-c7f3d6cb3c139b6b.rmeta: crates/smartvlc-link/src/lib.rs crates/smartvlc-link/src/error.rs crates/smartvlc-link/src/link.rs crates/smartvlc-link/src/mac.rs crates/smartvlc-link/src/rx.rs crates/smartvlc-link/src/stats.rs crates/smartvlc-link/src/sync.rs crates/smartvlc-link/src/tx.rs crates/smartvlc-link/src/uplink.rs crates/smartvlc-link/src/uplink_vlc.rs

crates/smartvlc-link/src/lib.rs:
crates/smartvlc-link/src/error.rs:
crates/smartvlc-link/src/link.rs:
crates/smartvlc-link/src/mac.rs:
crates/smartvlc-link/src/rx.rs:
crates/smartvlc-link/src/stats.rs:
crates/smartvlc-link/src/sync.rs:
crates/smartvlc-link/src/tx.rs:
crates/smartvlc-link/src/uplink.rs:
crates/smartvlc-link/src/uplink_vlc.rs:
