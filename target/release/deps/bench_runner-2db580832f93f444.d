/root/repo/target/release/deps/bench_runner-2db580832f93f444.d: crates/bench/src/bin/bench_runner.rs

/root/repo/target/release/deps/bench_runner-2db580832f93f444: crates/bench/src/bin/bench_runner.rs

crates/bench/src/bin/bench_runner.rs:
