/root/repo/target/release/deps/ablation_envelope-c0d9139d7a1a64c4.d: crates/bench/src/bin/ablation_envelope.rs

/root/repo/target/release/deps/ablation_envelope-c0d9139d7a1a64c4: crates/bench/src/bin/ablation_envelope.rs

crates/bench/src/bin/ablation_envelope.rs:
