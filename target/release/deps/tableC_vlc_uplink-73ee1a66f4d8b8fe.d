/root/repo/target/release/deps/tableC_vlc_uplink-73ee1a66f4d8b8fe.d: crates/bench/src/bin/tableC_vlc_uplink.rs

/root/repo/target/release/deps/tableC_vlc_uplink-73ee1a66f4d8b8fe: crates/bench/src/bin/tableC_vlc_uplink.rs

crates/bench/src/bin/tableC_vlc_uplink.rs:
