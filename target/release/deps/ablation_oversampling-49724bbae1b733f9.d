/root/repo/target/release/deps/ablation_oversampling-49724bbae1b733f9.d: crates/bench/src/bin/ablation_oversampling.rs

/root/repo/target/release/deps/ablation_oversampling-49724bbae1b733f9: crates/bench/src/bin/ablation_oversampling.rs

crates/bench/src/bin/ablation_oversampling.rs:
