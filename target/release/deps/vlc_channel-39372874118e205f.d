/root/repo/target/release/deps/vlc_channel-39372874118e205f.d: crates/vlc-channel/src/lib.rs crates/vlc-channel/src/ambient.rs crates/vlc-channel/src/detector.rs crates/vlc-channel/src/faults.rs crates/vlc-channel/src/frontend.rs crates/vlc-channel/src/led.rs crates/vlc-channel/src/link.rs crates/vlc-channel/src/optics.rs crates/vlc-channel/src/photodiode.rs crates/vlc-channel/src/shadowing.rs

/root/repo/target/release/deps/libvlc_channel-39372874118e205f.rlib: crates/vlc-channel/src/lib.rs crates/vlc-channel/src/ambient.rs crates/vlc-channel/src/detector.rs crates/vlc-channel/src/faults.rs crates/vlc-channel/src/frontend.rs crates/vlc-channel/src/led.rs crates/vlc-channel/src/link.rs crates/vlc-channel/src/optics.rs crates/vlc-channel/src/photodiode.rs crates/vlc-channel/src/shadowing.rs

/root/repo/target/release/deps/libvlc_channel-39372874118e205f.rmeta: crates/vlc-channel/src/lib.rs crates/vlc-channel/src/ambient.rs crates/vlc-channel/src/detector.rs crates/vlc-channel/src/faults.rs crates/vlc-channel/src/frontend.rs crates/vlc-channel/src/led.rs crates/vlc-channel/src/link.rs crates/vlc-channel/src/optics.rs crates/vlc-channel/src/photodiode.rs crates/vlc-channel/src/shadowing.rs

crates/vlc-channel/src/lib.rs:
crates/vlc-channel/src/ambient.rs:
crates/vlc-channel/src/detector.rs:
crates/vlc-channel/src/faults.rs:
crates/vlc-channel/src/frontend.rs:
crates/vlc-channel/src/led.rs:
crates/vlc-channel/src/link.rs:
crates/vlc-channel/src/optics.rs:
crates/vlc-channel/src/photodiode.rs:
crates/vlc-channel/src/shadowing.rs:
