/root/repo/target/release/deps/smartvlc-daae39075fbfe599.d: src/bin/smartvlc.rs

/root/repo/target/release/deps/smartvlc-daae39075fbfe599: src/bin/smartvlc.rs

src/bin/smartvlc.rs:
