/root/repo/target/release/deps/smartvlc-239c55438d8be22c.d: src/bin/smartvlc.rs

/root/repo/target/release/deps/smartvlc-239c55438d8be22c: src/bin/smartvlc.rs

src/bin/smartvlc.rs:
