/root/repo/target/release/deps/chaos_suite-28c3980dcafafab7.d: crates/bench/src/bin/chaos_suite.rs

/root/repo/target/release/deps/chaos_suite-28c3980dcafafab7: crates/bench/src/bin/chaos_suite.rs

crates/bench/src/bin/chaos_suite.rs:
