//! Property-based integration tests over the public API.

use proptest::prelude::*;
use smartvlc::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any payload at any data-carrying dimming level survives the frame
    /// codec round trip, and the waveform realizes the level.
    #[test]
    fn frame_roundtrip_any_payload_any_level(
        payload in proptest::collection::vec(any::<u8>(), 0..256),
        level_pct in 8u32..=92,
    ) {
        let cfg = SystemConfig::default();
        let l = level_pct as f64 / 100.0;
        let mut codec = FrameCodec::new(cfg.clone()).unwrap();
        let frame = Frame::new(
            PatternDescriptor::Amppm { dimming_q: cfg.quantize_dimming(l), tier: 0 },
            payload.clone(),
        ).unwrap();
        let slots = codec.emit(&frame).unwrap();
        let (back, stats) = codec.parse(&slots).unwrap();
        prop_assert!(stats.crc_ok);
        prop_assert_eq!(back.payload, payload);
        let duty = slots.iter().filter(|&&b| b).count() as f64 / slots.len() as f64;
        prop_assert!((duty - l).abs() < 0.06, "l={} duty={}", l, duty);
    }

    /// The planner always returns a plan meeting the paper's constraints
    /// for any target level.
    #[test]
    fn planner_respects_constraints(level_q in 0u32..=1024) {
        let cfg = SystemConfig::default();
        let planner = AmppmPlanner::new(cfg.clone()).unwrap();
        let l = level_q as f64 / 1024.0;
        let plan = planner.plan(DimmingLevel::new(l).unwrap()).unwrap();
        prop_assert!(plan.super_symbol.n_super() as u64 <= cfg.n_max_super());
        prop_assert!(plan.expected_ser <= cfg.ser_upper_bound + 1e-12);
        prop_assert!((plan.achieved.value() - l).abs() <= cfg.dimming_quantum,
            "l={} achieved={:?}", l, plan.achieved);
    }

    /// Slot corruption is always contained: parsing never panics and
    /// never yields a clean CRC with altered payload bytes.
    #[test]
    fn corruption_never_passes_crc(
        flips in proptest::collection::vec(0usize..4000, 1..12),
        seed in any::<u64>(),
    ) {
        let cfg = SystemConfig::default();
        let mut codec = FrameCodec::new(cfg.clone()).unwrap();
        let mut rng = DetRng::seed_from_u64(seed);
        let mut payload = vec![0u8; 64];
        rng.fill_bytes(&mut payload);
        let frame = Frame::new(
            PatternDescriptor::Amppm { dimming_q: cfg.quantize_dimming(0.5), tier: 0 },
            payload.clone(),
        ).unwrap();
        let mut slots = codec.emit(&frame).unwrap();
        for &f in &flips {
            let i = f % slots.len();
            slots[i] = !slots[i];
        }
        // Err(_) means structural damage was detected — fine.
        if let Ok((back, stats)) = codec.parse(&slots) {
            if stats.crc_ok {
                // CRC can only pass if the payload is intact (flips
                // hit padding/compensation/idle regions).
                prop_assert_eq!(back.payload, payload);
            }
        }
    }

    /// The adaptation steppers always land exactly on target with every
    /// intermediate step invisible.
    #[test]
    fn adaptation_always_lands_and_stays_invisible(
        from_pct in 0u32..=100,
        to_pct in 0u32..=100,
    ) {
        use smartvlc::core::adaptation::perceived;
        let from = from_pct as f64 / 100.0;
        let to = to_pct as f64 / 100.0;
        let stepper = PerceptionStepper::new(0.003);
        let steps = stepper.steps(from, to);
        if from != to {
            prop_assert_eq!(*steps.last().unwrap(), to);
        }
        let mut prev = from;
        for &s in &steps {
            prop_assert!((perceived(s) - perceived(prev)).abs() <= 0.003 + 1e-12);
            prev = s;
        }
    }

    /// Channel decisions are unbiased: an ideal-geometry link decodes any
    /// slot pattern exactly.
    #[test]
    fn short_range_channel_is_transparent(pattern in proptest::collection::vec(any::<bool>(), 1..2000)) {
        let mut channel = OpticalChannel::new(
            ChannelConfig::paper_bench(1.0),
            DetRng::seed_from_u64(1),
        );
        let decided = channel.transmit_and_decide(&pattern);
        prop_assert_eq!(decided, pattern);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The streaming receiver never panics and never fabricates a clean
    /// frame out of arbitrary garbage slot streams.
    #[test]
    fn receiver_survives_garbage(seed in proptest::num::u64::ANY, len in 100usize..8000) {
        let mut rng = DetRng::seed_from_u64(seed);
        let garbage: Vec<bool> = (0..len).map(|_| rng.chance(0.5)).collect();
        let mut rx = Receiver::new(SystemConfig::default()).unwrap();
        for chunk in garbage.chunks(251) {
            for ev in rx.push_slots(chunk) {
                // A CRC-clean frame from random noise requires a valid
                // preamble + header + CRC16 collision: vanishingly
                // unlikely; treat it as a failure to catch regressions
                // that loosen validation.
                prop_assert!(
                    matches!(ev, RxEvent::CrcFailed { .. }),
                    "garbage produced {ev:?}"
                );
            }
        }
    }

    /// A frame embedded in garbage is still recovered (receiver hunts
    /// through noise to the true preamble).
    #[test]
    fn receiver_finds_frame_in_garbage(seed in proptest::num::u64::ANY) {
        let cfg = SystemConfig::default();
        let mut rng = DetRng::seed_from_u64(seed);
        let mut codec = FrameCodec::new(cfg.clone()).unwrap();
        let mut payload = vec![0u8; 48];
        rng.fill_bytes(&mut payload);
        let frame = Frame::new(
            PatternDescriptor::Amppm { dimming_q: cfg.quantize_dimming(0.5), tier: 0 },
            payload,
        ).unwrap();
        let slots = codec.emit(&frame).unwrap();
        let mut stream: Vec<bool> = (0..300).map(|_| rng.chance(0.5)).collect();
        stream.extend(&slots);
        stream.extend((0..100).map(|_| rng.chance(0.5)));
        let mut rx = Receiver::new(cfg).unwrap();
        let events = rx.push_slots(&stream);
        prop_assert!(
            events.iter().any(|e| matches!(e, RxEvent::Frame { frame: f, .. } if f == &frame)),
            "frame lost in garbage"
        );
    }
}
