//! The paper's headline claims, encoded as executable assertions.
//!
//! Each test names the claim and the section it comes from. Where the
//! reproduction's absolute numbers differ from the testbed's, the test
//! pins the *shape* (ordering, crossover, reach) — see EXPERIMENTS.md
//! for the quantitative side-by-side.

use desim::SimDuration;
use smartvlc::prelude::*;
use smartvlc::sim::static_run::paper_levels;
use smartvlc::sim::{run_distance_sweep, run_dynamic, run_scheme_comparison};

fn dur() -> SimDuration {
    SimDuration::millis(600)
}

/// §6.2 / Fig. 15: "AMPPM outperforms MPPM under all dimming levels, and
/// outperforms OOK-CT under 16 out of the 17 dimming levels" (OOK-CT
/// wins only in a narrow window around 0.5).
#[test]
fn fig15_amppm_dominates_the_baselines() {
    let levels = paper_levels();
    let amppm = run_scheme_comparison(SchemeKind::Amppm, &levels, dur(), 40);
    let mppm = run_scheme_comparison(SchemeKind::Mppm(20), &levels, dur(), 40);
    let ook = run_scheme_comparison(SchemeKind::OokCt, &levels, dur(), 40);
    let mut ook_wins = Vec::new();
    for i in 0..levels.len() {
        assert!(
            amppm[i].goodput_bps >= mppm[i].goodput_bps * 0.97,
            "l={}: AMPPM {} < MPPM {}",
            levels[i],
            amppm[i].goodput_bps,
            mppm[i].goodput_bps
        );
        if ook[i].goodput_bps > amppm[i].goodput_bps {
            ook_wins.push(levels[i]);
        }
    }
    // OOK-CT may only win inside the paper's 0.47-0.53 window (we allow
    // the two quantized levels nearest 0.5).
    assert!(
        ook_wins.iter().all(|&l| (0.44..=0.56).contains(&l)),
        "OOK-CT wins outside the mid window: {ook_wins:?}"
    );
    assert!(!ook_wins.is_empty(), "OOK-CT should win near 0.5");
}

/// §6.2: "improves the throughput achieved with two state-of-the-art
/// approaches by 40% and 12% on average" — our calibration lands lower
/// (see EXPERIMENTS.md) but the gains must be decisively positive and
/// largest at the extremes.
#[test]
fn fig15_average_gains_are_positive_and_peak_at_extremes() {
    let levels = paper_levels();
    let amppm = run_scheme_comparison(SchemeKind::Amppm, &levels, dur(), 41);
    let ook = run_scheme_comparison(SchemeKind::OokCt, &levels, dur(), 41);
    let sum =
        |pts: &[smartvlc::sim::StaticPoint]| -> f64 { pts.iter().map(|p| p.goodput_bps).sum() };
    assert!(sum(&amppm) > 1.15 * sum(&ook), "average gain under 15%");
    let gain = |i: usize| amppm[i].goodput_bps / ook[i].goodput_bps;
    let edge = gain(0).min(gain(levels.len() - 1));
    let mid = gain(levels.len() / 2);
    // Default calibration: ~1.8x at the edges (the paper's 2.7x "+170%"
    // corresponds to the optimistic calibration — see fig15_optimistic).
    assert!(edge > 1.6, "edge gain {edge}");
    assert!(edge > mid, "gains must peak at the extremes");
}

/// §6.2 / Fig. 16: "SmartVLC maintains its peak throughput at each
/// dimming level at distances up to 3.6 m. After this distance, the
/// throughput drops dramatically", and "the dimming level of the LED
/// does not affect the communication distance".
#[test]
fn fig16_reach_is_3_6m_and_level_independent() {
    let distances = [3.0, 3.5, 4.75];
    let mut reaches = Vec::new();
    for level in [0.18, 0.5, 0.7] {
        let pts = run_distance_sweep(SchemeKind::Amppm, level, &distances, dur(), 42);
        // Peak held through 3.5 m...
        assert!(
            pts[1].goodput_bps > 0.8 * pts[0].goodput_bps,
            "l={level}: {pts:?}"
        );
        // ...dead well past the cliff.
        assert!(
            pts[2].goodput_bps < 0.1 * pts[0].goodput_bps,
            "l={level}: {pts:?}"
        );
        reaches.push(pts[1].goodput_bps / pts[0].goodput_bps);
    }
    // Reach ratio roughly equal across levels (duty-cycle dimming does
    // not change the SNR per slot).
    let min = reaches.iter().copied().fold(f64::MAX, f64::min);
    let max = reaches.iter().copied().fold(f64::MIN, f64::max);
    assert!(max - min < 0.25, "{reaches:?}");
}

/// §6.3 / Fig. 19: the dynamic run keeps total light constant, produces
/// the near-symmetric throughput hump, and roughly halves adaptation
/// adjustments.
#[test]
fn fig19_dynamic_scenario_story() {
    let outcome = run_dynamic(SchemeKind::Amppm, Some(14.0), 43);
    let r = &outcome.report;
    for p in &r.trace[1..] {
        assert!((p.ambient + p.led - 1.0).abs() < 0.06, "{p:?}");
    }
    let tp: Vec<f64> = r.throughput_bps.iter().map(|&(_, b)| b).collect();
    let first = tp[1];
    let last = tp[tp.len() - 1];
    let peak = tp.iter().copied().fold(f64::MIN, f64::max);
    assert!(peak > 1.5 * first, "no hump: first={first} peak={peak}");
    assert!(peak > 1.5 * last, "no hump: last={last} peak={peak}");
    assert!(
        (0.30..=0.60).contains(&outcome.adaptation_reduction),
        "reduction={}",
        outcome.adaptation_reduction
    );
}

/// §6.1: the user study selects fth = 250 Hz and τp = 0.003, giving
/// Nmax = 500 (Eq. 4).
#[test]
fn user_study_selects_paper_thresholds() {
    let study = UserStudy::recruit(20, 2017);
    assert_eq!(
        study.min_safe_frequency(&[150.0, 200.0, 250.0, 300.0]),
        Some(250.0)
    );
    assert_eq!(
        study.max_safe_resolution(&[0.003, 0.004, 0.005, 0.006, 0.007]),
        Some(0.003)
    );
    let cfg = SystemConfig::default();
    assert_eq!(cfg.n_max_super(), 500);
}

/// §4.1.2: multiplexing refines dimming granularity without raising the
/// symbol error rate — super-symbols inherit their constituents' SER.
#[test]
fn multiplexing_does_not_raise_ser() {
    let cfg = SystemConfig::default();
    let planner = AmppmPlanner::new(cfg.clone()).unwrap();
    for i in 1..=19 {
        let l = i as f64 / 20.0;
        let plan = planner.plan(DimmingLevel::new(l).unwrap()).unwrap();
        assert!(
            plan.expected_ser <= cfg.ser_upper_bound + 1e-12,
            "l={l}: SER {}",
            plan.expected_ser
        );
        assert!(
            plan.super_symbol.n_super() as u64 <= cfg.n_max_super(),
            "l={l}: flicker bound violated"
        );
    }
}

/// §5.2: only the PRU path sustains the prototype's clocks — the claim
/// that justifies the whole implementation section.
#[test]
fn only_pru_sustains_paper_clocks() {
    use smartvlc::hw::pru::{AccessMethod, PruTimingModel};
    for m in AccessMethod::ALL {
        let t = PruTimingModel::bbb(m);
        let ok = t.supports_hz(125_000.0) && t.max_spi_sample_rate_hz() >= 500_000.0;
        assert_eq!(ok, m == AccessMethod::Pru, "{m:?}");
    }
}
