//! Cross-crate integration: the full SmartVLC pipeline assembled from
//! the public facade API, including the sample-level receive path
//! (ADC samples → clock recovery → slot decisions → frame parse) that
//! the slot-level link simulation shortcuts.

use smartvlc::link::sync::{decimate, find_slot_phase};
use smartvlc::prelude::*;

/// Frames of every scheme survive the real (sampled) channel at 3 m and
/// decode identically.
#[test]
fn every_scheme_survives_the_sampled_channel() {
    let cfg = SystemConfig::default();
    let mut codec = FrameCodec::new(cfg.clone()).unwrap();
    let payload: Vec<u8> = (0..96u32).map(|i| (i * 29 % 251) as u8).collect();
    let descriptors = [
        PatternDescriptor::Amppm {
            dimming_q: cfg.quantize_dimming(0.35),
            tier: 0,
        },
        PatternDescriptor::Mppm { n: 20, k: 7 },
        PatternDescriptor::OokCt {
            dimming_q: cfg.quantize_dimming(0.35),
        },
        PatternDescriptor::Vppm { n: 10, width: 4 },
    ];
    for d in descriptors {
        let frame = Frame::new(d, payload.clone()).unwrap();
        let slots = codec.emit(&frame).unwrap();
        let mut channel =
            OpticalChannel::new(ChannelConfig::paper_bench(3.0), DetRng::seed_from_u64(5));
        let decided = channel.transmit_and_decide(&slots);
        let (back, stats) = codec.parse(&decided).unwrap();
        assert!(stats.crc_ok, "{d:?}");
        assert_eq!(back, frame, "{d:?}");
    }
}

/// The oversampled path: raw per-sample levels, phase recovery from the
/// preamble, decimation, threshold decisions, then frame parsing.
#[test]
fn sample_level_receive_chain_recovers_frames() {
    let cfg = SystemConfig::default();
    let mut codec = FrameCodec::new(cfg.clone()).unwrap();
    let frame = Frame::new(
        PatternDescriptor::Amppm {
            dimming_q: cfg.quantize_dimming(0.5),
            tier: 0,
        },
        b"sample-level pipeline".to_vec(),
    )
    .unwrap();
    let slots = codec.emit(&frame).unwrap();

    // Transmit at sample granularity through the channel internals.
    let mut channel =
        OpticalChannel::new(ChannelConfig::paper_bench(2.0), DetRng::seed_from_u64(9));
    let detector = channel.analytic_detector();
    let spp = channel.config().samples_per_slot;

    // Build a sample stream with an unknown phase offset, as the free-
    // running receiver clock would see it: prepend a partial slot of
    // idle light.
    let per_slot = channel.transmit(&slots);
    // Reconstruct 4x samples from slot levels (the channel averages per
    // slot; emulate the raw stream with an LED-transition edge sample at
    // each slot boundary); a fractional lead of 3 samples plays the role
    // of the free-running clock offset.
    let mut samples = vec![detector.mu_off_a; 3];
    let mut prev = detector.mu_off_a;
    for &level in &per_slot {
        samples.push((prev + level) / 2.0); // smeared transition sample
        for _ in 1..spp {
            samples.push(level);
        }
        prev = level;
    }

    let lock = find_slot_phase(&samples, spp, &detector, 20).expect("phase found");
    assert_eq!(lock.phase, 3, "clock offset recovered");
    let levels = decimate(&samples, spp, lock.phase, usize::MAX);
    let decided = detector.decide_all(&levels);
    let (back, stats) = codec.parse(&decided).unwrap();
    assert!(stats.crc_ok);
    assert_eq!(back.payload, b"sample-level pipeline");
}

/// The PRU/ring transmit path: frames queued by the "ARM", emitted by the
/// GPIO loop at the slot clock, and still parseable.
#[test]
fn frames_survive_the_hw_transmit_path() {
    let cfg = SystemConfig::default();
    let mut codec = FrameCodec::new(cfg.clone()).unwrap();
    let frame = Frame::new(
        PatternDescriptor::Amppm {
            dimming_q: cfg.quantize_dimming(0.4),
            tier: 0,
        },
        vec![0xA5; 64],
    )
    .unwrap();
    let slots = codec.emit(&frame).unwrap();

    let mut board = smartvlc::hw::TransmitterBoard::paper_prototype();
    assert_eq!(board.queue_slots(&slots), slots.len(), "ring has room");
    board.run_until(SimTime::from_nanos(
        (slots.len() as u64 - 1) * cfg.tslot_nanos(),
    ));
    assert_eq!(board.underruns(), 0);
    let emitted = board.emitted();
    let (back, stats) = codec.parse(&emitted).unwrap();
    assert!(stats.crc_ok);
    assert_eq!(back, frame);
}

/// Ambient-driven story: as the blind opens, the planner re-plans and
/// frames keep flowing at every level along the way.
#[test]
fn frames_flow_across_an_ambient_sweep() {
    let cfg = SystemConfig::default();
    let mut tx = Transmitter::new(
        cfg.clone(),
        SchemeKind::Amppm,
        1.0,
        0.1,
        0.1,
        smartvlc_core::frame::format::FecMode::Off,
        DetRng::seed_from_u64(3),
    )
    .unwrap();
    let mut codec = FrameCodec::new(cfg).unwrap();
    for step in 0..=20 {
        let ambient = 0.1 + 0.8 * step as f64 / 20.0;
        tx.update_ambient(ambient);
        let data = tx.random_data();
        let (_, slots) = tx.build_frame(step as u16, &data).unwrap();
        let (frame, stats) = codec.parse(&slots).unwrap();
        assert!(stats.crc_ok, "ambient={ambient}");
        let (hdr, body) = smartvlc::link::mac::MacHeader::decapsulate(&frame.payload).unwrap();
        assert_eq!(hdr.seq, step as u16);
        assert_eq!(body, &data[..]);
        // The emitted waveform sits at the LED's commanded level.
        let duty = slots.iter().filter(|&&b| b).count() as f64 / slots.len() as f64;
        assert!((duty - tx.led_level()).abs() < 0.03, "ambient={ambient}");
    }
}
