//! Flicker safety across the whole system: whatever the link puts on the
//! air — frames of any scheme at any level, idle filler, adaptation
//! ramps — must pass the Type-I/Type-II audit. This is the paper's core
//! illumination guarantee ("without bringing any flickering to users").

use smartvlc::core::flicker::{FlickerAuditor, FlickerRules};
use smartvlc::prelude::*;

fn auditor() -> FlickerAuditor {
    FlickerAuditor::new(FlickerRules::from_config(&SystemConfig::default()))
}

#[test]
fn amppm_frames_are_flicker_free_at_all_levels() {
    let cfg = SystemConfig::default();
    let mut codec = FrameCodec::new(cfg.clone()).unwrap();
    let a = auditor();
    for i in 2..=18 {
        let l = i as f64 / 20.0;
        let frame = Frame::new(
            PatternDescriptor::Amppm {
                dimming_q: cfg.quantize_dimming(l),
                tier: 0,
            },
            vec![0x6C; 128],
        )
        .unwrap();
        // A train of three frames: the seams matter too.
        let one = codec.emit(&frame).unwrap();
        let mut train = Vec::new();
        for _ in 0..3 {
            train.extend(&one);
        }
        let report = a.audit(&train);
        assert!(report.is_clean(), "l={l}: {:?}", report.violations.first());
        assert!((report.mean_level - l).abs() < 0.03, "l={l}");
    }
}

#[test]
fn baseline_frames_are_flicker_free_too() {
    let cfg = SystemConfig::default();
    let mut codec = FrameCodec::new(cfg.clone()).unwrap();
    let a = auditor();
    let descriptors = [
        PatternDescriptor::Mppm { n: 20, k: 5 },
        PatternDescriptor::OokCt {
            dimming_q: cfg.quantize_dimming(0.25),
        },
        PatternDescriptor::Vppm { n: 10, width: 3 },
    ];
    for d in descriptors {
        let frame = Frame::new(d, vec![0x3A; 128]).unwrap();
        let slots = codec.emit(&frame).unwrap();
        let report = a.audit(&slots);
        assert!(report.is_clean(), "{d:?}: {:?}", report.violations.first());
    }
}

#[test]
fn transmitter_stream_with_gaps_and_adaptation_is_clean() {
    let cfg = SystemConfig::default();
    let mut tx = Transmitter::new(
        cfg.clone(),
        SchemeKind::Amppm,
        1.0,
        0.55,
        0.1,
        smartvlc_core::frame::format::FecMode::Off,
        DetRng::seed_from_u64(8),
    )
    .unwrap();
    let a = auditor();
    let mut air = Vec::new();
    // Slowly brightening ambient at a realistic rate (the 67 s blind pull
    // moves ~0.012/s; a frame is ~12 ms, so ~0.00015 per frame — we use
    // 3x that): the LED dims 0.45 -> 0.44 across twenty frames with idle
    // gaps in between.
    for step in 0..20 {
        tx.update_ambient(0.55 + step as f64 * 0.0005);
        let data = tx.random_data();
        let (_, slots) = tx.build_frame(step, &data).unwrap();
        air.extend(tx.idle_filler(64));
        air.extend(slots);
    }
    let report = a.audit(&air);
    assert!(report.is_clean(), "{:?}", report.violations.first());
}

#[test]
fn auditor_still_catches_a_misbehaving_transmitter() {
    // Sanity that the above tests mean something: an LED jumping levels
    // without adaptation is flagged.
    let a = auditor();
    let mut air: Vec<bool> = Vec::new();
    for i in 0..12_000 {
        air.push((i * 2) % 10 < 2); // l = 0.2
    }
    for i in 0..12_000 {
        air.push((i * 8) % 10 < 8); // l = 0.8, no ramp
    }
    assert!(!a.audit(&air).is_clean());
}
