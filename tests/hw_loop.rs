//! The whole prototype, end to end at the hardware granularity:
//!
//! ```text
//! ARM frames → TX ring → PRU GPIO loop → LED dynamics → 3 m of office
//! air → photodiode → TIA+ADC codes → RX ring → ARM: phase recovery →
//! slot decisions → frame parse
//! ```
//!
//! This is the §5 implementation story as one test: both PRU loops run
//! at their real clocks (8 µs slots, 2 µs samples), the rings carry the
//! data, and the ARM-side DSP recovers the frame.

use smartvlc::hw::{ReceiverBoard, TransmitterBoard};
use smartvlc::link::sync::{decimate, find_slot_phase};
use smartvlc::prelude::*;

#[test]
fn full_prototype_loop_recovers_a_frame() {
    let cfg = SystemConfig::default();
    let mut codec = FrameCodec::new(cfg.clone()).unwrap();

    // ARM side: build a frame and queue it into the PRU TX ring, with
    // idle filler ahead of it (the receiver must find the preamble).
    let frame = Frame::new(
        PatternDescriptor::Amppm {
            dimming_q: cfg.quantize_dimming(0.45),
            tier: 0,
        },
        b"through the whole prototype".to_vec(),
    )
    .unwrap();
    let frame_slots = codec.emit(&frame).unwrap();
    let mut tx_board = TransmitterBoard::paper_prototype();
    let idle: Vec<bool> = (0..40).map(|i| (i / 2) % 2 == 0).collect();
    assert_eq!(tx_board.queue_slots(&idle), idle.len());
    assert_eq!(tx_board.queue_slots(&frame_slots), frame_slots.len());

    // PRU TX loop: drain the ring at the slot clock.
    let total_slots = idle.len() + frame_slots.len();
    tx_board.run_until(SimTime::from_nanos(
        (total_slots as u64 - 1) * cfg.tslot_nanos(),
    ));
    assert_eq!(tx_board.underruns(), 0);
    let emitted = tx_board.emitted();

    // Air: LED dynamics + optics + noise, at sample granularity. The
    // channel produces per-sample photocurrents; feed them through the
    // ADC exactly as the PRU sampler would clock them out.
    let mut channel =
        OpticalChannel::new(ChannelConfig::paper_bench(3.0), DetRng::seed_from_u64(77));
    let detector = channel.analytic_detector();
    let per_slot_levels = channel.transmit(&emitted);

    // PRU RX loop: the sampler clocks the ADC at fs = 4 ftx; reconstruct
    // the 4x stream (transition sample + interior) the frontend would
    // digitize, with a 2-sample clock offset to exercise phase recovery.
    let spp = channel.config().samples_per_slot;
    let mut sample_stream = vec![detector.mu_off_a; 2];
    let mut prev = detector.mu_off_a;
    for &level in &per_slot_levels {
        sample_stream.push((prev + level) / 2.0);
        for _ in 1..spp {
            sample_stream.push(level);
        }
        prev = level;
    }
    let mut rx_board = ReceiverBoard::paper_prototype();
    let mut idx = 0usize;
    let fs_period_ns = 2_000u64; // 500 kS/s
    let n_samples = sample_stream.len();
    // The frontend quantizes each current sample into an ADC code.
    let frontend = channel.config().frontend;
    let mut enc_rng = DetRng::seed_from_u64(5);
    rx_board.run_until(
        SimTime::from_nanos((n_samples as u64 - 1) * fs_period_ns),
        |_t| {
            let code = frontend.sample(sample_stream[idx.min(n_samples - 1)], &mut enc_rng);
            idx += 1;
            code
        },
    );
    assert_eq!(rx_board.overrun_drops(), 0);

    // ARM side: drain the RX ring, undo the ADC, recover the slot phase,
    // decide slots, and parse the frame out of the stream.
    let codes = rx_board.drain(usize::MAX);
    assert_eq!(codes.len(), n_samples);
    let currents: Vec<f64> = codes.iter().map(|&c| frontend.code_to_current(c)).collect();
    let lock = find_slot_phase(&currents, spp, &detector, 20).expect("phase lock");
    assert_eq!(lock.phase, 2, "clock offset recovered");
    let levels = decimate(&currents, spp, lock.phase, usize::MAX);
    let decided = detector.decide_all(&levels);

    let mut rx = Receiver::new(cfg).unwrap();
    let events = rx.push_slots(&decided);
    let got = events.iter().find_map(|e| match e {
        RxEvent::Frame { frame, stats, .. } if stats.crc_ok => Some(frame.clone()),
        _ => None,
    });
    assert_eq!(got.as_ref(), Some(&frame), "{events:?}");
}
